//! Set-level equivalence of the optimized converged rebuild.
//!
//! The rebuild hot path (memoized thresholds, sorted-index band scans,
//! cached pair-hash rows, parallel per-node workers) is pure
//! optimization: it must produce HS/VS *sets* identical to a naive
//! reference that classifies every ordered pair directly through
//! [`MembershipPredicate::classify`] — no hash matrix, no memo, no
//! index. These tests pin that equivalence for both predicate families
//! and both oracle fidelities (exact, i.e. the shared-snapshot fast
//! path, and per-querier noisy, i.e. the per-source fallback path).

use std::collections::BTreeSet;

use proptest::prelude::*;

use avmem::harness::{AvmemSim, CandidateIndex, OracleChoice, PredicateChoice, SimConfig};
use avmem::predicate::{MembershipPredicate, NodeInfo, Sliver};
use avmem_avmon::AvailabilityOracle;
use avmem_sim::SimDuration;
use avmem_trace::{AvailabilityPdf, OvernetModel};
use avmem_util::{consistent_hash, Availability, NodeId};

/// Per-node `(HS, VS)` id sets from a naive full classification over all
/// ordered pairs, straight through the predicate trait.
fn reference_sets(sim: &AvmemSim) -> Vec<(BTreeSet<u64>, BTreeSet<u64>)> {
    let n = sim.trace().num_nodes();
    let now = sim.now();
    (0..n)
        .map(|x| {
            let xid = NodeId::new(x as u64);
            let mut hs = BTreeSet::new();
            let mut vs = BTreeSet::new();
            if let Some(own_av) = sim.oracle().estimate(xid, xid, now) {
                let own = NodeInfo::new(xid, own_av);
                for y in 0..n {
                    if y == x {
                        continue;
                    }
                    let yid = NodeId::new(y as u64);
                    let Some(y_av) = sim.oracle().estimate(xid, yid, now) else {
                        continue;
                    };
                    match sim.predicate().classify(own, NodeInfo::new(yid, y_av)) {
                        Some(Sliver::Horizontal) => {
                            hs.insert(y as u64);
                        }
                        Some(Sliver::Vertical) => {
                            vs.insert(y as u64);
                        }
                        None => {}
                    }
                }
            }
            (hs, vs)
        })
        .collect()
}

/// Per-node `(HS, VS)` id sets as the optimized rebuild stored them.
fn rebuilt_sets(sim: &AvmemSim) -> Vec<(BTreeSet<u64>, BTreeSet<u64>)> {
    (0..sim.trace().num_nodes())
        .map(|x| {
            let m = sim.membership(NodeId::new(x as u64));
            (
                m.hs().map(|nb| nb.id.raw()).collect(),
                m.vs().map(|nb| nb.id.raw()).collect(),
            )
        })
        .collect()
}

fn check_equivalence(predicate: PredicateChoice, oracle: OracleChoice, seed: u64) {
    let trace = OvernetModel::default().hosts(300).days(1).generate(11);
    let mut config = SimConfig::paper_default(seed);
    config.predicate = predicate;
    config.oracle = oracle;
    let mut sim = AvmemSim::new(trace, config);
    sim.warm_up(SimDuration::from_hours(24));

    let reference = reference_sets(&sim);
    let rebuilt = rebuilt_sets(&sim);
    let mut nonempty = 0;
    for (x, (reference, rebuilt)) in reference.iter().zip(&rebuilt).enumerate() {
        assert_eq!(reference.0, rebuilt.0, "HS set of node {x} diverges");
        assert_eq!(reference.1, rebuilt.1, "VS set of node {x} diverges");
        nonempty += usize::from(!reference.0.is_empty() || !reference.1.is_empty());
    }
    assert!(
        nonempty > 200,
        "equivalence is vacuous: only {nonempty} nodes have neighbors"
    );
}

#[test]
fn avmem_predicate_exact_oracle_matches_naive_reference() {
    check_equivalence(PredicateChoice::paper_default(), OracleChoice::Exact, 1);
}

#[test]
fn avmem_predicate_noisy_oracle_matches_naive_reference() {
    // Per-querier noise: the rebuild cannot share an availability
    // snapshot and must fall back to per-source estimates.
    check_equivalence(PredicateChoice::paper_default(), OracleChoice::paper_noise(), 2);
}

#[test]
fn random_predicate_exact_oracle_matches_naive_reference() {
    check_equivalence(
        PredicateChoice::Random {
            expected_degree: 12.0,
        },
        OracleChoice::Exact,
        3,
    );
}

#[test]
fn random_predicate_noisy_oracle_matches_naive_reference() {
    check_equivalence(
        PredicateChoice::Random {
            expected_degree: 12.0,
        },
        OracleChoice::paper_noise(),
        4,
    );
}

#[test]
fn shared_noise_oracle_matches_naive_reference() {
    // Shared noise is querier-independent, so this exercises the sorted
    // index over *perturbed* (non-truth) estimates.
    check_equivalence(
        PredicateChoice::paper_default(),
        OracleChoice::NoisyShared {
            error: 0.05,
            staleness: SimDuration::from_mins(20),
        },
        5,
    );
}

proptest! {
    /// Banded HS enumeration (sorted index + memoized horizontal
    /// threshold) finds exactly the candidates a full scan classifies as
    /// horizontal.
    #[test]
    fn banded_hs_enumeration_matches_full_scan_classification(
        avs in proptest::collection::vec(0.0f64..=1.0, 2..120),
        center in 0.0f64..=1.0,
        epsilon in 0.02f64..0.4,
        c2 in 0.2f64..4.0,
        source_id in 0u64..1000,
    ) {
        let pred = avmem::predicate::AvmemPredicate::new(
            epsilon,
            500.0,
            avmem::predicate::VerticalRule::Logarithmic { c1: 2.5 },
            avmem::predicate::HorizontalRule::LogarithmicConstant { c2 },
            AvailabilityPdf::from_sample(
                &avs.iter().map(|&v| Availability::saturating(v)).collect::<Vec<_>>(),
                10,
            ),
        );
        let own = NodeInfo::new(NodeId::new(source_id), Availability::saturating(center));

        // Full scan: classify every candidate through the trait.
        let full: BTreeSet<usize> = avs
            .iter()
            .enumerate()
            .filter(|&(y, &v)| {
                y as u64 != source_id
                    && pred.classify(
                        own,
                        NodeInfo::new(NodeId::new(y as u64), Availability::saturating(v)),
                    ) == Some(Sliver::Horizontal)
            })
            .map(|(y, _)| y)
            .collect();

        // Banded: range-scan the sorted index, accept by the memoized
        // horizontal threshold.
        let index = CandidateIndex::build(
            avs.iter().map(|&v| Some(Availability::saturating(v))).enumerate(),
        );
        let memo = pred.rebuild_memo();
        let source = memo.source(own.availability);
        let banded: BTreeSet<usize> = index
            .band(own.availability, source.epsilon())
            .filter(|&(y, _)| {
                y as u64 != source_id
                    && consistent_hash(own.id, NodeId::new(y as u64)) <= source.horizontal()
            })
            .map(|(y, _)| y)
            .collect();

        prop_assert_eq!(banded, full);
    }
}
