//! Overlay snapshots and graph analysis.
//!
//! The microbenchmarks of §4.1 inspect the overlay at an instant: sliver
//! sizes versus availability (Figs. 2b/2c), horizontal-sliver scaling
//! against band population (Fig. 3), incoming vertical-sliver link
//! distribution (Fig. 4), and — behind Theorems 2 and 3 — connectivity of
//! the band sub-overlays and the whole graph. [`OverlaySnapshot`] captures
//! the state and answers those questions.

use std::collections::VecDeque;
use std::sync::OnceLock;

use avmem_util::{Availability, NodeId};
use serde::{Deserialize, Serialize};

use crate::membership::SliverScope;

/// One node's state at snapshot time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSnapshot {
    /// The node.
    pub id: NodeId,
    /// Whether the node was online at snapshot time.
    pub online: bool,
    /// The availability estimate the overlay was built from.
    pub estimated_availability: Availability,
    /// Ground-truth long-term availability (for measurement).
    pub true_availability: Availability,
    /// Horizontal-sliver neighbor ids.
    pub hs: Vec<NodeId>,
    /// Vertical-sliver neighbor ids.
    pub vs: Vec<NodeId>,
}

/// Compressed-sparse-row undirected adjacency over the online nodes of a
/// snapshot, for one sliver scope. Built once per `(snapshot, scope)` and
/// shared by every graph metric — the analytics in `figures.rs` call
/// [`OverlaySnapshot::hops_from`] and the component metrics repeatedly,
/// and rebuilding a `Vec<Vec<usize>>` per call dominated their cost.
#[derive(Debug, Clone, PartialEq)]
struct Csr {
    /// `offsets[u]..offsets[u + 1]` indexes `u`'s slice of `targets`.
    offsets: Vec<usize>,
    /// Neighbor lists, concatenated. Parallel edges are kept (an edge
    /// listed by both endpoints appears twice); BFS is unaffected.
    targets: Vec<u32>,
}

impl Csr {
    fn build(nodes: &[NodeSnapshot], scope: SliverScope) -> Self {
        let n = nodes.len();
        let mut degree = vec![0usize; n];
        visit_edges(nodes, scope, |i, j| {
            degree[i] += 1;
            degree[j] += 1;
        });
        let mut offsets = vec![0usize; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + degree[i];
        }
        let mut cursor: Vec<usize> = offsets[..n].to_vec();
        let mut targets = vec![0u32; offsets[n]];
        visit_edges(nodes, scope, |i, j| {
            targets[cursor[i]] = j as u32;
            cursor[i] += 1;
            targets[cursor[j]] = i as u32;
            cursor[j] += 1;
        });
        Csr { offsets, targets }
    }

    fn neighbors(&self, u: usize) -> &[u32] {
        &self.targets[self.offsets[u]..self.offsets[u + 1]]
    }
}

/// Calls `f(i, j)` for every stored `scope` edge `i → j` with both
/// endpoints online.
fn visit_edges(nodes: &[NodeSnapshot], scope: SliverScope, mut f: impl FnMut(usize, usize)) {
    let hs = matches!(scope, SliverScope::HsOnly | SliverScope::Both);
    let vs = matches!(scope, SliverScope::VsOnly | SliverScope::Both);
    for (i, node) in nodes.iter().enumerate() {
        if !node.online {
            continue;
        }
        let edges = node
            .hs
            .iter()
            .filter(|_| hs)
            .chain(node.vs.iter().filter(|_| vs));
        for &peer in edges {
            let j = peer.raw() as usize;
            if nodes[j].online {
                f(i, j);
            }
        }
    }
}

fn scope_slot(scope: SliverScope) -> usize {
    match scope {
        SliverScope::HsOnly => 0,
        SliverScope::VsOnly => 1,
        SliverScope::Both => 2,
    }
}

/// A frozen view of the whole overlay.
///
/// Nodes are stored densely; `id.raw()` indexes into the vector (the
/// population is fixed, as in the Overnet trace).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OverlaySnapshot {
    nodes: Vec<NodeSnapshot>,
    epsilon: f64,
    /// Lazily built per-scope adjacency (HS-only / VS-only / both),
    /// shared by all graph metrics. Not part of the snapshot's value:
    /// equality ignores it.
    adjacency: [OnceLock<Csr>; 3],
}

impl PartialEq for OverlaySnapshot {
    fn eq(&self, other: &Self) -> bool {
        self.nodes == other.nodes && self.epsilon == other.epsilon
    }
}

impl OverlaySnapshot {
    /// Wraps per-node snapshots. `epsilon` is the band half-width the
    /// overlay was built with.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty or ids are not dense `0..n`.
    pub fn new(nodes: Vec<NodeSnapshot>, epsilon: f64) -> Self {
        assert!(!nodes.is_empty(), "snapshot needs at least one node");
        for (i, node) in nodes.iter().enumerate() {
            assert_eq!(
                node.id.raw() as usize,
                i,
                "snapshot ids must be dense 0..n"
            );
        }
        OverlaySnapshot {
            nodes,
            epsilon,
            adjacency: [OnceLock::new(), OnceLock::new(), OnceLock::new()],
        }
    }

    /// The build-once adjacency for `scope`.
    fn csr(&self, scope: SliverScope) -> &Csr {
        self.adjacency[scope_slot(scope)].get_or_init(|| Csr::build(&self.nodes, scope))
    }

    /// All nodes (online and offline).
    pub fn nodes(&self) -> &[NodeSnapshot] {
        &self.nodes
    }

    /// The band half-width `ε`.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Online nodes only.
    pub fn online_nodes(&self) -> impl Iterator<Item = &NodeSnapshot> + '_ {
        self.nodes.iter().filter(|n| n.online)
    }

    /// Number of online nodes.
    pub fn online_count(&self) -> usize {
        self.online_nodes().count()
    }

    /// Histogram of online nodes by true availability (Fig. 2a).
    pub fn availability_histogram(&self, buckets: usize) -> avmem_util::stats::Histogram {
        let mut h = avmem_util::stats::Histogram::new(buckets);
        for node in self.online_nodes() {
            h.add(node.true_availability.value());
        }
        h
    }

    fn online_member_count(&self, members: &[NodeId]) -> usize {
        members
            .iter()
            .filter(|id| self.nodes[id.raw() as usize].online)
            .count()
    }

    /// `(availability, online |HS|)` points for online nodes (Fig. 2b).
    ///
    /// Counts only *online* sliver members: the paper's snapshot (and
    /// Theorems 1–3) measure online neighbors. Stored lists legitimately
    /// retain offline entries — see [`OverlaySnapshot::hs_stored_sizes`].
    pub fn hs_sizes(&self) -> Vec<(f64, usize)> {
        self.online_nodes()
            .map(|n| {
                (
                    n.estimated_availability.value(),
                    self.online_member_count(&n.hs),
                )
            })
            .collect()
    }

    /// `(availability, online |VS|)` points for online nodes (Fig. 2c).
    pub fn vs_sizes(&self) -> Vec<(f64, usize)> {
        self.online_nodes()
            .map(|n| {
                (
                    n.estimated_availability.value(),
                    self.online_member_count(&n.vs),
                )
            })
            .collect()
    }

    /// `(availability, stored |HS|)` including offline entries.
    pub fn hs_stored_sizes(&self) -> Vec<(f64, usize)> {
        self.online_nodes()
            .map(|n| (n.estimated_availability.value(), n.hs.len()))
            .collect()
    }

    /// `(availability, stored |VS|)` including offline entries.
    pub fn vs_stored_sizes(&self) -> Vec<(f64, usize)> {
        self.online_nodes()
            .map(|n| (n.estimated_availability.value(), n.vs.len()))
            .collect()
    }

    /// For each online node: `(candidates within ±ε, online |HS|)` —
    /// Fig. 3's axes. Candidates are other *online* nodes whose estimated
    /// availability lies within the band.
    pub fn hs_scaling_points(&self) -> Vec<(f64, f64)> {
        let online: Vec<&NodeSnapshot> = self.online_nodes().collect();
        online
            .iter()
            .map(|node| {
                let candidates = online
                    .iter()
                    .filter(|other| {
                        other.id != node.id
                            && other
                                .estimated_availability
                                .distance(node.estimated_availability)
                                < self.epsilon
                    })
                    .count();
                (
                    candidates as f64,
                    self.online_member_count(&node.hs) as f64,
                )
            })
            .collect()
    }

    /// Incoming vertical-sliver link count per availability bucket of the
    /// *target* node (Fig. 4): how many online nodes' VS lists reference a
    /// node in each bucket.
    pub fn incoming_vs_links(&self, buckets: usize) -> Vec<u64> {
        let mut counts = vec![0u64; buckets];
        for node in self.online_nodes() {
            for &target in &node.vs {
                let target_node = &self.nodes[target.raw() as usize];
                if !target_node.online {
                    continue;
                }
                let b = ((target_node.true_availability.value() * buckets as f64).floor()
                    as usize)
                    .min(buckets - 1);
                counts[b] += 1;
            }
        }
        counts
    }

    /// Per-bucket *average* incoming VS links per online node in the
    /// bucket (normalizes Fig. 4 against Fig. 2a's node distribution).
    pub fn incoming_vs_links_per_node(&self, buckets: usize) -> Vec<f64> {
        let links = self.incoming_vs_links(buckets);
        let population = self.availability_histogram(buckets);
        links
            .iter()
            .enumerate()
            .map(|(i, &l)| {
                let n = population.count(i);
                if n == 0 {
                    0.0
                } else {
                    l as f64 / n as f64
                }
            })
            .collect()
    }

    /// Fraction of online nodes inside the largest weakly connected
    /// component of the overlay restricted to `scope` edges among online
    /// nodes. `1.0` means fully connected.
    pub fn largest_component_fraction(&self, scope: crate::membership::SliverScope) -> f64 {
        let online: Vec<usize> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.online)
            .map(|(i, _)| i)
            .collect();
        if online.is_empty() {
            return 0.0;
        }
        let csr = self.csr(scope);
        let mut visited = vec![false; self.nodes.len()];
        let mut best = 0usize;
        let mut queue = VecDeque::new();
        for &start in &online {
            if visited[start] {
                continue;
            }
            // BFS.
            let mut size = 0usize;
            queue.clear();
            queue.push_back(start);
            visited[start] = true;
            while let Some(u) = queue.pop_front() {
                size += 1;
                for &v in csr.neighbors(u) {
                    if !visited[v as usize] {
                        visited[v as usize] = true;
                        queue.push_back(v as usize);
                    }
                }
            }
            best = best.max(size);
        }
        best as f64 / online.len() as f64
    }

    /// Theorem 2 check: connectivity of the sub-overlay of online nodes
    /// whose estimated availability lies within `±ε` of `center`, using
    /// HS edges only. Returns `None` if the band holds fewer than two
    /// online nodes.
    pub fn band_component_fraction(&self, center: Availability) -> Option<f64> {
        let in_band: Vec<usize> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| {
                n.online && n.estimated_availability.distance(center) <= self.epsilon
            })
            .map(|(i, _)| i)
            .collect();
        if in_band.len() < 2 {
            return None;
        }
        // Walk the shared HS adjacency restricted to in-band nodes: band
        // membership implies online, so the restriction of the online HS
        // graph to the band is exactly the band sub-overlay.
        let mut member = vec![false; self.nodes.len()];
        for &i in &in_band {
            member[i] = true;
        }
        let csr = self.csr(SliverScope::HsOnly);
        let mut visited = vec![false; self.nodes.len()];
        let start = in_band[0];
        let mut queue = VecDeque::from([start]);
        visited[start] = true;
        let mut size = 0usize;
        while let Some(u) = queue.pop_front() {
            size += 1;
            for &v in csr.neighbors(u) {
                let v = v as usize;
                if member[v] && !visited[v] {
                    visited[v] = true;
                    queue.push_back(v);
                }
            }
        }
        Some(size as f64 / in_band.len() as f64)
    }

    /// BFS hop distances from `start` over the overlay restricted to
    /// `scope` edges among online nodes, following edges in both
    /// directions (messages flow along out-edges, but the paper's
    /// connectivity analysis treats the graph as undirected).
    ///
    /// Returns one entry per node: `None` for offline or unreachable
    /// nodes, `Some(hops)` otherwise (`Some(0)` for `start` itself).
    ///
    /// # Panics
    ///
    /// Panics if `start` is not in the snapshot or is offline.
    pub fn hops_from(
        &self,
        start: NodeId,
        scope: crate::membership::SliverScope,
    ) -> Vec<Option<u32>> {
        let s = start.raw() as usize;
        assert!(s < self.nodes.len(), "unknown start node {start}");
        assert!(self.nodes[s].online, "start node {start} is offline");
        let csr = self.csr(scope);
        let mut hops: Vec<Option<u32>> = vec![None; self.nodes.len()];
        hops[s] = Some(0);
        let mut queue = VecDeque::from([s]);
        while let Some(u) = queue.pop_front() {
            let d = hops[u].expect("queued nodes have distances");
            for &v in csr.neighbors(u) {
                let v = v as usize;
                if hops[v].is_none() {
                    hops[v] = Some(d + 1);
                    queue.push_back(v);
                }
            }
        }
        hops
    }

    /// Summary of hop distances from `start` to all other reachable
    /// online nodes (diameter estimates; the paper's O(log N) routing
    /// claims rest on these being small).
    pub fn path_length_summary(
        &self,
        start: NodeId,
        scope: crate::membership::SliverScope,
    ) -> avmem_util::stats::Summary {
        let hops = self.hops_from(start, scope);
        avmem_util::stats::Summary::from_values(
            hops.iter()
                .flatten()
                .filter(|&&h| h > 0)
                .map(|&h| h as f64),
        )
    }

    /// Out-degree summary (stored |HS| + |VS|) over online nodes.
    pub fn degree_summary(&self) -> avmem_util::stats::Summary {
        avmem_util::stats::Summary::from_values(
            self.online_nodes().map(|n| (n.hs.len() + n.vs.len()) as f64),
        )
    }

    /// Mean total degree (|HS| + |VS|) over online nodes.
    pub fn mean_degree(&self) -> f64 {
        let online: Vec<&NodeSnapshot> = self.online_nodes().collect();
        if online.is_empty() {
            return 0.0;
        }
        online
            .iter()
            .map(|n| (n.hs.len() + n.vs.len()) as f64)
            .sum::<f64>()
            / online.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::membership::SliverScope;

    fn snap(
        specs: &[(bool, f64, &[u64], &[u64])], // (online, av, hs, vs)
    ) -> OverlaySnapshot {
        let nodes = specs
            .iter()
            .enumerate()
            .map(|(i, (online, av, hs, vs))| NodeSnapshot {
                id: NodeId::new(i as u64),
                online: *online,
                estimated_availability: Availability::saturating(*av),
                true_availability: Availability::saturating(*av),
                hs: hs.iter().map(|&h| NodeId::new(h)).collect(),
                vs: vs.iter().map(|&v| NodeId::new(v)).collect(),
            })
            .collect();
        OverlaySnapshot::new(nodes, 0.1)
    }

    #[test]
    fn online_filtering() {
        let s = snap(&[
            (true, 0.5, &[], &[]),
            (false, 0.6, &[], &[]),
            (true, 0.7, &[], &[]),
        ]);
        assert_eq!(s.online_count(), 2);
    }

    #[test]
    fn availability_histogram_counts_online_only() {
        let s = snap(&[
            (true, 0.05, &[], &[]),
            (false, 0.05, &[], &[]),
            (true, 0.95, &[], &[]),
        ]);
        let h = s.availability_histogram(10);
        assert_eq!(h.count(0), 1);
        assert_eq!(h.count(9), 1);
        assert_eq!(h.total(), 2);
    }

    #[test]
    fn sliver_size_points() {
        let s = snap(&[
            (true, 0.5, &[1], &[2]),
            (true, 0.55, &[], &[]),
            (true, 0.9, &[], &[]),
        ]);
        let hs = s.hs_sizes();
        assert!(hs.contains(&(0.5, 1)));
        let vs = s.vs_sizes();
        assert!(vs.contains(&(0.5, 1)));
    }

    #[test]
    fn hs_scaling_counts_band_candidates() {
        // Node 0 at .5 with two online in-band candidates and one far node.
        let s = snap(&[
            (true, 0.50, &[1, 2], &[]),
            (true, 0.55, &[], &[]),
            (true, 0.45, &[], &[]),
            (true, 0.90, &[], &[]),
        ]);
        let points = s.hs_scaling_points();
        let p0 = points[0];
        assert_eq!(p0, (2.0, 2.0));
    }

    #[test]
    fn incoming_vs_links_follow_targets() {
        let s = snap(&[
            (true, 0.5, &[], &[2]),
            (true, 0.6, &[], &[2]),
            (true, 0.95, &[], &[]),
        ]);
        let links = s.incoming_vs_links(10);
        assert_eq!(links[9], 2);
        assert_eq!(links.iter().sum::<u64>(), 2);
    }

    #[test]
    fn incoming_vs_links_skip_offline_targets() {
        let s = snap(&[(true, 0.5, &[], &[1]), (false, 0.9, &[], &[])]);
        assert_eq!(s.incoming_vs_links(10).iter().sum::<u64>(), 0);
    }

    #[test]
    fn per_node_normalization() {
        let s = snap(&[
            (true, 0.5, &[], &[2, 3]),
            (true, 0.6, &[], &[2]),
            (true, 0.95, &[], &[]),
            (true, 0.96, &[], &[]),
        ]);
        let per_node = s.incoming_vs_links_per_node(10);
        // Bucket 9 has 2 online nodes and 3 incoming links: 1.5 per node.
        assert!((per_node[9] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn connectivity_full_graph() {
        // 0-1-2 chain via VS edges: connected.
        let s = snap(&[
            (true, 0.1, &[], &[1]),
            (true, 0.5, &[], &[2]),
            (true, 0.9, &[], &[]),
        ]);
        assert_eq!(s.largest_component_fraction(SliverScope::Both), 1.0);
        // HS-only: no edges at all → singletons.
        assert!((s.largest_component_fraction(SliverScope::HsOnly) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn connectivity_ignores_offline() {
        let s = snap(&[
            (true, 0.1, &[], &[1]),
            (false, 0.5, &[], &[2]), // bridge offline
            (true, 0.9, &[], &[]),
        ]);
        assert_eq!(s.largest_component_fraction(SliverScope::Both), 0.5);
    }

    #[test]
    fn band_connectivity() {
        // Band around 0.5: nodes 0, 1 linked by HS; node 2 outside band.
        let s = snap(&[
            (true, 0.50, &[1], &[]),
            (true, 0.55, &[], &[]),
            (true, 0.90, &[], &[]),
        ]);
        assert_eq!(
            s.band_component_fraction(Availability::saturating(0.5)),
            Some(1.0)
        );
        // Band around 0.9 has a single node.
        assert_eq!(
            s.band_component_fraction(Availability::saturating(0.9)),
            None
        );
    }

    #[test]
    fn mean_degree_over_online() {
        let s = snap(&[
            (true, 0.5, &[1], &[2]),
            (true, 0.55, &[], &[]),
            (false, 0.6, &[0, 1], &[2]),
        ]);
        assert_eq!(s.mean_degree(), 1.0);
    }

    #[test]
    fn hops_from_walks_the_chain() {
        // 0 → 1 → 2 chain via VS edges.
        let s = snap(&[
            (true, 0.1, &[], &[1]),
            (true, 0.5, &[], &[2]),
            (true, 0.9, &[], &[]),
        ]);
        let hops = s.hops_from(NodeId::new(0), SliverScope::Both);
        assert_eq!(hops, vec![Some(0), Some(1), Some(2)]);
    }

    #[test]
    fn hops_from_skips_offline_and_unreachable() {
        let s = snap(&[
            (true, 0.1, &[], &[1]),
            (false, 0.5, &[], &[2]), // offline bridge
            (true, 0.9, &[], &[]),
        ]);
        let hops = s.hops_from(NodeId::new(0), SliverScope::Both);
        assert_eq!(hops, vec![Some(0), None, None]);
    }

    #[test]
    fn hops_are_undirected() {
        // Edge only 1 → 0; BFS from 0 still reaches 1.
        let s = snap(&[(true, 0.1, &[], &[]), (true, 0.5, &[], &[0])]);
        let hops = s.hops_from(NodeId::new(0), SliverScope::Both);
        assert_eq!(hops[1], Some(1));
    }

    #[test]
    #[should_panic(expected = "offline")]
    fn hops_from_offline_start_panics() {
        let s = snap(&[(false, 0.1, &[], &[]), (true, 0.5, &[], &[])]);
        let _ = s.hops_from(NodeId::new(0), SliverScope::Both);
    }

    #[test]
    fn path_length_summary_excludes_start() {
        let s = snap(&[
            (true, 0.1, &[], &[1]),
            (true, 0.5, &[], &[2]),
            (true, 0.9, &[], &[]),
        ]);
        let summary = s.path_length_summary(NodeId::new(0), SliverScope::Both);
        assert_eq!(summary.count(), 2);
        assert_eq!(summary.min(), 1.0);
        assert_eq!(summary.max(), 2.0);
    }

    #[test]
    fn degree_summary_counts_stored_entries() {
        let s = snap(&[
            (true, 0.5, &[1], &[2]),
            (true, 0.55, &[], &[]),
            (false, 0.6, &[0, 1], &[]),
        ]);
        let summary = s.degree_summary();
        assert_eq!(summary.count(), 2);
        assert_eq!(summary.max(), 2.0);
        assert_eq!(summary.min(), 0.0);
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn non_dense_ids_panic() {
        let nodes = vec![NodeSnapshot {
            id: NodeId::new(5),
            online: true,
            estimated_availability: Availability::ZERO,
            true_availability: Availability::ZERO,
            hs: vec![],
            vs: vec![],
        }];
        let _ = OverlaySnapshot::new(nodes, 0.1);
    }
}
