//! Full-system simulation configuration.

use avmem_avmon::AvmonConfig;
use avmem_sim::{LatencyModel, SimDuration};
use serde::{Deserialize, Serialize};

use crate::predicate::{HorizontalRule, VerticalRule};

/// Which membership predicate builds the overlay.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PredicateChoice {
    /// The AVMEM predicate family (the paper's contribution). `N*` and
    /// the availability PDF are derived from the trace at build time.
    Avmem {
        /// Horizontal-band half-width (paper: 0.1).
        epsilon: f64,
        /// Vertical-sliver sub-predicate.
        vertical: VerticalRule,
        /// Horizontal-sliver sub-predicate.
        horizontal: HorizontalRule,
    },
    /// The availability-agnostic consistent-random baseline (Fig. 10):
    /// expected out-degree `expected_degree`.
    Random {
        /// Target expected out-degree.
        expected_degree: f64,
    },
}

impl PredicateChoice {
    /// The paper's default predicates: ε = 0.1, I.B + II.B with
    /// [`crate::predicate::DEFAULT_C1`] / [`crate::predicate::DEFAULT_C2`].
    pub fn paper_default() -> Self {
        PredicateChoice::Avmem {
            epsilon: 0.1,
            vertical: VerticalRule::Logarithmic {
                c1: crate::predicate::DEFAULT_C1,
            },
            horizontal: HorizontalRule::LogarithmicConstant {
                c2: crate::predicate::DEFAULT_C2,
            },
        }
    }
}

/// Which availability oracle the overlay queries.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OracleChoice {
    /// Ground truth from the trace (a perfect monitoring service).
    Exact,
    /// Ground truth plus per-querier noise and staleness — the model the
    /// attack analysis (Figs. 5–6) uses: divergent caches are the worst
    /// case for receiver-side verification.
    Noisy {
        /// Uniform error amplitude.
        error: f64,
        /// How long a (querier, target) answer stays cached.
        staleness: SimDuration,
    },
    /// Ground truth plus noise *shared across queriers* (re-drawn each
    /// staleness epoch) — models AVMON's aggregated answers, which every
    /// client receives identically. Used by the multicast spam analysis
    /// (Fig. 12).
    NoisyShared {
        /// Uniform error amplitude.
        error: f64,
        /// How long an aggregate answer stays fixed.
        staleness: SimDuration,
    },
    /// The full ping-based AVMON service. `config.assignment` picks the
    /// monitor-assignment strategy: the paper's all-pairs rule, or the
    /// consistent-hash ring whose O(k) churn deltas make 10⁵–10⁶-host
    /// populations buildable.
    Avmon {
        /// AVMON parameters.
        config: AvmonConfig,
    },
}

impl OracleChoice {
    /// The default fault model used for attack experiments: ±0.05 error,
    /// 20-minute staleness.
    pub fn paper_noise() -> Self {
        OracleChoice::Noisy {
            error: 0.05,
            staleness: SimDuration::from_mins(20),
        }
    }
}

/// How the overlay is maintained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MaintenanceMode {
    /// Compute the converged overlay directly from the predicate over the
    /// whole population — the state the discovery protocol reaches after
    /// running long enough (§3.1's discovery-time analysis shows full
    /// convergence in `O(N/v)` periods, well inside the paper's 24 h
    /// warm-up).
    Converged,
    /// Run the actual sub-protocols through the event engine: per-period
    /// CYCLON shuffling + discovery over the coarse view, and periodic
    /// refresh.
    EventDriven {
        /// Discovery/shuffle period (paper: 1 minute).
        protocol_period: SimDuration,
        /// Refresh period (paper: 20 minutes).
        refresh_period: SimDuration,
    },
}

impl MaintenanceMode {
    /// The paper's event-driven parameters: 1-minute protocol period,
    /// 20-minute refresh period.
    pub fn paper_event_driven() -> Self {
        MaintenanceMode::EventDriven {
            protocol_period: SimDuration::from_mins(1),
            refresh_period: SimDuration::from_mins(20),
        }
    }
}

/// How event-driven maintenance executes each timestamp cohort.
///
/// The event engine pops *cohorts* — every event sharing the next
/// timestamp — and the harness runs each cohort in canonical phases: a
/// per-node **propose** phase (shuffle initiation decisions, bootstrap
/// seeding, all randomness counter-keyed by `(run_seed, node,
/// timestamp)` — the shard id is deliberately *not* part of the key, so
/// draws are independent of the shard count), a **commit** phase applying
/// shuffle requests in ascending initiator id and then the replies and
/// timeouts, and a per-node **finalize** phase (discovery over the
/// post-commit view, then refresh). Both variants execute those exact
/// semantics; they differ only in whether the population is partitioned
/// into shard-owned slices driven by worker threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MaintenanceEngine {
    /// Straight-line reference implementation: every phase runs on the
    /// calling thread over the whole population. Kept as the equivalence
    /// oracle the sharded engine is pinned against.
    Serial,
    /// Shard-owned execution: nodes are partitioned by id into `S`
    /// contiguous shards, each owning its slice of the shuffle/membership
    /// state and its own event queue. Propose and finalize run
    /// shard-parallel on worker threads; commit exchanges cross-shard
    /// request/reply batches at phase barriers and applies them in a
    /// deterministic merge order. State after every cohort is
    /// bit-identical to [`MaintenanceEngine::Serial`] for any shard and
    /// thread count.
    Sharded {
        /// Shard count; `None` matches the resolved thread count.
        shards: Option<usize>,
        /// Worker-thread cap; `None` uses all available cores (respecting
        /// any cgroup CPU quota).
        threads: Option<usize>,
    },
}

impl MaintenanceEngine {
    /// The worker-thread count this engine runs with.
    pub fn threads(self) -> usize {
        match self {
            MaintenanceEngine::Serial => 1,
            MaintenanceEngine::Sharded { threads, .. } => {
                threads.unwrap_or_else(avmem_util::parallel::default_threads)
            }
        }
    }

    /// The shard count this engine partitions the population into.
    /// Defaults to the resolved thread count, so an unconfigured run gets
    /// one shard per worker.
    pub fn shards(self) -> usize {
        match self {
            MaintenanceEngine::Serial => 1,
            MaintenanceEngine::Sharded { shards, .. } => {
                shards.unwrap_or_else(|| self.threads()).max(1)
            }
        }
    }
}

/// Complete configuration of an [`crate::harness::AvmemSim`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Master seed for all protocol randomness (latencies, gossip,
    /// annealing, shuffling). The trace carries its own seed.
    pub seed: u64,
    /// Overlay predicate.
    pub predicate: PredicateChoice,
    /// Availability oracle.
    pub oracle: OracleChoice,
    /// Maintenance mode.
    pub maintenance: MaintenanceMode,
    /// Batch execution engine for event-driven maintenance (ignored in
    /// [`MaintenanceMode::Converged`], whose rebuild is always parallel).
    pub engine: MaintenanceEngine,
    /// Per-hop latency model (paper: uniform 20–80 ms).
    pub latency: LatencyModel,
    /// Buckets for the discretized availability PDF (paper-scale: 10,
    /// i.e. 0.1-wide buckets).
    pub pdf_buckets: usize,
    /// Memory budget (bytes) for the cached pair-hash rows. Populations
    /// whose dense matrix (`8·N²` bytes) fits the budget cache hashed
    /// rows lazily; larger ones keep an LRU of the hottest rows within
    /// the budget (hashing on the fly only when the budget holds no row
    /// at all). See [`crate::harness::PairHashes::with_budget`].
    pub hash_budget: usize,
    /// Run event-driven finalize through the fast path: epoch-memoized
    /// thresholds, shard-local pair-hash caches, batched oracle
    /// estimates, and refresh short-circuiting. Bit-identical to the
    /// reference pair-at-a-time evaluation for every oracle — pinned by
    /// the fast-vs-slow legs of the `event_driven_equivalence` suite —
    /// so this is purely a performance knob; turning it off recovers
    /// the reference path for A/B pinning.
    #[serde(default = "default_finalize_fast")]
    pub finalize_fast: bool,
}

fn default_finalize_fast() -> bool {
    true
}

/// The pair-hash budget for [`SimConfig::paper_default`]: the crate
/// default, overridable through the `AVMEM_HASH_BUDGET` environment
/// variable (bytes) so CI can sweep the store modes — dense, LRU,
/// direct — without code changes.
fn hash_budget_from_env() -> usize {
    std::env::var("AVMEM_HASH_BUDGET")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .unwrap_or(crate::harness::hashes::DEFAULT_HASH_BUDGET)
}

impl SimConfig {
    /// The paper's evaluation setup: default predicates, exact oracle,
    /// converged maintenance, uniform 20–80 ms hops, 10 PDF buckets.
    pub fn paper_default(seed: u64) -> Self {
        SimConfig {
            seed,
            predicate: PredicateChoice::paper_default(),
            oracle: OracleChoice::Exact,
            maintenance: MaintenanceMode::Converged,
            engine: MaintenanceEngine::Sharded {
                shards: None,
                threads: None,
            },
            latency: LatencyModel::PAPER,
            pdf_buckets: 10,
            hash_budget: hash_budget_from_env(),
            finalize_fast: default_finalize_fast(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_paper_constants() {
        let cfg = SimConfig::paper_default(1);
        let PredicateChoice::Avmem {
            epsilon,
            vertical,
            horizontal,
        } = cfg.predicate
        else {
            panic!("paper default must be the AVMEM predicate");
        };
        assert_eq!(epsilon, 0.1);
        assert_eq!(
            vertical,
            VerticalRule::Logarithmic {
                c1: crate::predicate::DEFAULT_C1
            }
        );
        assert_eq!(
            horizontal,
            HorizontalRule::LogarithmicConstant {
                c2: crate::predicate::DEFAULT_C2
            }
        );
        assert_eq!(cfg.latency, LatencyModel::PAPER);
    }

    #[test]
    fn default_engine_is_sharded_with_machine_threads() {
        let cfg = SimConfig::paper_default(1);
        assert_eq!(
            cfg.engine,
            MaintenanceEngine::Sharded {
                shards: None,
                threads: None,
            }
        );
        assert!(cfg.engine.threads() >= 1);
        assert!(cfg.engine.shards() >= 1);
        assert_eq!(MaintenanceEngine::Serial.threads(), 1);
        assert_eq!(MaintenanceEngine::Serial.shards(), 1);
        let pinned = MaintenanceEngine::Sharded {
            shards: Some(4),
            threads: Some(6),
        };
        assert_eq!(pinned.threads(), 6);
        assert_eq!(pinned.shards(), 4);
        // Shards default to the resolved thread count.
        let auto = MaintenanceEngine::Sharded {
            shards: None,
            threads: Some(3),
        };
        assert_eq!(auto.shards(), 3);
    }

    #[test]
    fn paper_event_driven_periods() {
        let MaintenanceMode::EventDriven {
            protocol_period,
            refresh_period,
        } = MaintenanceMode::paper_event_driven()
        else {
            panic!("expected event driven");
        };
        assert_eq!(protocol_period, SimDuration::from_mins(1));
        assert_eq!(refresh_period, SimDuration::from_mins(20));
    }
}
