//! Availability-sorted candidate index for banded enumeration.
//!
//! A converged rebuild classifies every ordered pair, but horizontal
//! sliver candidates all live inside the `±ε` band around the source
//! node's availability. When the oracle answers *querier-independently*
//! (exact, shared-noise, or AVMON aggregates), all nodes agree on every
//! candidate's availability, so one sorted index over the population
//! turns "find my in-band candidates" from an `O(N)` scan into a binary
//! search plus a range scan of the ~`2εN` in-band entries.
//!
//! Range bounds are widened by a tiny slack and every hit is re-checked
//! with the exact [`Availability::distance`] band test, so the enumerated
//! set is *identical* to what a full scan classifies as in-band — float
//! rounding in `av(x) ± ε` can never drop or add a candidate.

use avmem_util::Availability;

/// Slack added to the band boundaries before the exact re-check. Values
/// live in `[0, 1]`, so a few ulps of `1.0` dominate any rounding error
/// in `av(x) ± ε` or in the distance subtraction.
const BAND_SLACK: f64 = 1e-9;

/// A population index sorted by availability.
///
/// # Examples
///
/// ```
/// use avmem::harness::CandidateIndex;
/// use avmem_util::Availability;
///
/// let avs = [0.9, 0.1, 0.52, 0.48, 0.55].map(Availability::saturating);
/// let index = CandidateIndex::build(
///     avs.iter().enumerate().map(|(i, &a)| (i, Some(a))),
/// );
/// let mut band: Vec<usize> = index
///     .band(Availability::saturating(0.5), 0.1)
///     .map(|(i, _)| i)
///     .collect();
/// band.sort_unstable();
/// assert_eq!(band, vec![2, 3, 4]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateIndex {
    /// `(availability value, node index)` sorted ascending; ties broken
    /// by node index so the order is deterministic.
    sorted: Vec<(f64, u32)>,
}

impl CandidateIndex {
    /// Builds the index from `(node index, availability estimate)` pairs;
    /// nodes the oracle has no estimate for are left out (they can never
    /// be classified).
    ///
    /// # Panics
    ///
    /// Panics if a node index exceeds `u32::MAX` (the simulator's
    /// populations are far smaller).
    pub fn build(estimates: impl IntoIterator<Item = (usize, Option<Availability>)>) -> Self {
        let mut sorted: Vec<(f64, u32)> = estimates
            .into_iter()
            .filter_map(|(i, av)| {
                av.map(|a| (a.value(), u32::try_from(i).expect("population fits in u32")))
            })
            .collect();
        sorted.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        CandidateIndex { sorted }
    }

    /// Number of indexed nodes.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the index holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The raw sorted `(availability value, node index)` entries — the
    /// rebuild hot loop walks these directly (positions align with the
    /// per-rebuild vertical threshold table).
    pub(crate) fn entries(&self) -> &[(f64, u32)] {
        &self.sorted
    }

    /// The widened `[lo, hi]` range of sorted positions that could hold
    /// in-band candidates; entries inside still need the exact distance
    /// re-check, entries outside certainly fail it.
    pub(crate) fn fuzzy_range(&self, center: Availability, epsilon: f64) -> (usize, usize) {
        let lo = center.value() - epsilon - BAND_SLACK;
        let hi = center.value() + epsilon + BAND_SLACK;
        let start = self.sorted.partition_point(|&(v, _)| v < lo);
        let end = start + self.sorted[start..].partition_point(|&(v, _)| v <= hi);
        (start, end)
    }

    /// All nodes whose availability lies strictly within `±epsilon` of
    /// `center` — exactly the candidates a full scan would classify as
    /// horizontal (`distance < ε`), including the center node itself if
    /// indexed. Yields `(node index, availability)` in availability
    /// order.
    pub fn band(
        &self,
        center: Availability,
        epsilon: f64,
    ) -> impl Iterator<Item = (usize, Availability)> + '_ {
        let (start, end) = self.fuzzy_range(center, epsilon);
        self.sorted[start..end].iter().filter_map(move |&(v, i)| {
            let av = Availability::saturating(v);
            (center.distance(av) < epsilon).then_some((i as usize, av))
        })
    }

    /// The exact complement of [`CandidateIndex::band`]: all indexed
    /// nodes a full scan would classify as *vertical* (`distance ≥ ε`).
    /// Entries clearly below and above the band skip the per-candidate
    /// distance check; only the few inside the float-slack margin are
    /// re-checked.
    pub fn outside_band(
        &self,
        center: Availability,
        epsilon: f64,
    ) -> impl Iterator<Item = (usize, Availability)> + '_ {
        let (start, end) = self.fuzzy_range(center, epsilon);
        let to_entry = |&(v, i): &(f64, u32)| (i as usize, Availability::saturating(v));
        self.sorted[..start]
            .iter()
            .map(to_entry)
            .chain(self.sorted[start..end].iter().map(to_entry).filter(
                move |&(_, av)| center.distance(av) >= epsilon,
            ))
            .chain(self.sorted[end..].iter().map(to_entry))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn av(v: f64) -> Availability {
        Availability::saturating(v)
    }

    fn index_of(values: &[f64]) -> CandidateIndex {
        CandidateIndex::build(values.iter().enumerate().map(|(i, &v)| (i, Some(av(v)))))
    }

    fn full_scan(values: &[f64], center: f64, epsilon: f64) -> Vec<usize> {
        values
            .iter()
            .enumerate()
            .filter(|(_, &v)| av(center).distance(av(v)) < epsilon)
            .map(|(i, _)| i)
            .collect()
    }

    #[test]
    fn band_matches_full_scan() {
        let values = [0.0, 0.05, 0.1, 0.39, 0.4, 0.45, 0.5, 0.55, 0.6, 0.61, 1.0];
        for center in [0.0, 0.08, 0.5, 0.55, 0.97, 1.0] {
            for epsilon in [0.02, 0.1, 0.25] {
                let mut banded: Vec<usize> = index_of(&values)
                    .band(av(center), epsilon)
                    .map(|(i, _)| i)
                    .collect();
                banded.sort_unstable();
                assert_eq!(
                    banded,
                    full_scan(&values, center, epsilon),
                    "center={center} epsilon={epsilon}"
                );
            }
        }
    }

    #[test]
    fn boundary_candidates_follow_strict_distance() {
        // Distance exactly ε (representable: 0.125) is vertical, not
        // horizontal — the index must agree with the strict check.
        let values = [0.25, 0.375, 0.5];
        let banded: Vec<usize> = index_of(&values)
            .band(av(0.25), 0.125)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(banded, vec![0]);
    }

    #[test]
    fn unknown_nodes_are_skipped() {
        let index = CandidateIndex::build([
            (0, Some(av(0.5))),
            (1, None),
            (2, Some(av(0.52))),
        ]);
        assert_eq!(index.len(), 2);
        let ids: Vec<usize> = index.band(av(0.5), 0.1).map(|(i, _)| i).collect();
        assert_eq!(ids, vec![0, 2]);
    }

    #[test]
    fn empty_index_yields_nothing() {
        let index = CandidateIndex::build(std::iter::empty());
        assert!(index.is_empty());
        assert_eq!(index.band(av(0.5), 0.1).count(), 0);
        assert_eq!(index.outside_band(av(0.5), 0.1).count(), 0);
    }

    #[test]
    fn band_and_complement_partition_the_index() {
        let values = [0.0, 0.05, 0.1, 0.39, 0.4, 0.45, 0.5, 0.55, 0.6, 0.61, 1.0];
        let index = index_of(&values);
        for center in [0.0, 0.08, 0.45, 0.5, 0.97, 1.0] {
            for epsilon in [0.02, 0.1, 0.25] {
                let mut all: Vec<usize> = index
                    .band(av(center), epsilon)
                    .chain(index.outside_band(av(center), epsilon))
                    .map(|(i, _)| i)
                    .collect();
                all.sort_unstable();
                assert_eq!(all, (0..values.len()).collect::<Vec<_>>());
                for (i, a) in index.outside_band(av(center), epsilon) {
                    assert!(
                        av(center).distance(a) >= epsilon,
                        "node {i} wrongly outside band"
                    );
                }
            }
        }
    }
}
