//! The full-system simulation harness.
//!
//! [`AvmemSim`] binds every substrate together the way the paper's
//! evaluation does (§4): a churn trace drives node up/down state; an
//! availability oracle (exact, noisy, or full AVMON) answers availability
//! queries; the membership predicate builds each node's HS/VS lists —
//! either directly ("converged", the post-warm-up state the paper
//! snapshots) or by actually running the shuffle + discovery + refresh
//! sub-protocols through the event engine; and the management operations
//! execute over the resulting overlay with per-hop latencies.
//!
//! # Examples
//!
//! ```
//! use avmem::harness::{AvmemSim, SimConfig};
//! use avmem::ops::{AnycastConfig, AvailabilityTarget};
//! use avmem_sim::SimDuration;
//! use avmem_trace::OvernetModel;
//!
//! let trace = OvernetModel::default().hosts(120).days(1).generate(7);
//! let mut sim = AvmemSim::new(trace, SimConfig::paper_default(1));
//! sim.warm_up(SimDuration::from_hours(24));
//!
//! let initiator = sim
//!     .random_online_initiator(avmem::harness::InitiatorBand::Mid)
//!     .expect("some MID node online");
//! let outcome = sim.anycast(
//!     initiator,
//!     AvailabilityTarget::range(0.85, 0.95),
//!     AnycastConfig::paper_default(),
//! );
//! println!("delivered: {}", outcome.is_delivered());
//! ```

pub mod attack;
pub mod config;
pub mod hashes;
pub mod index;
pub mod oracle;

pub use attack::AttackSeries;
pub use config::{
    MaintenanceEngine, MaintenanceMode, OracleChoice, PredicateChoice, SimConfig,
};
pub use hashes::{PairCacheStats, PairHashes, PairStoreStats, ShardPairCache, DEFAULT_HASH_BUDGET};
pub use index::CandidateIndex;
pub use oracle::SimOracle;

use std::sync::Arc;
use std::time::{Duration, Instant};

use avmem_avmon::AvailabilityOracle;
use avmem_metrics::{shard_lane, Counter, Histogram, Registry, Tracer};
use avmem_shuffle::{EntryPool, ShuffleConfig, ShuffleMessage, ShuffleNode, ShuffleProposal, View};
use avmem_sim::{EngineGroup, Network, SimDuration, SimTime};
use avmem_trace::{AvailabilityPdf, ChurnTrace, OnlineIndex};
use avmem_util::parallel::{default_threads, par_chunks_mut, par_each_mut};
use avmem_util::{Availability, NodeId, Rng, ShardPartition, SplitMix64, Xoshiro256};
use serde::{Deserialize, Serialize};

use crate::graph::{NodeSnapshot, OverlaySnapshot};
use crate::membership::{Membership, Neighbor, SliverScope};
use crate::ops::anycast::{run_anycast, AnycastConfig, AnycastOutcome};
use crate::ops::multicast::{run_multicast, MulticastConfig, MulticastOutcome};
use crate::ops::target::AvailabilityTarget;
use crate::ops::world::OverlayWorld;
use crate::predicate::{
    AvmemPredicate, MembershipPredicate, NodeInfo, RandomPredicate, Sliver, SourceThresholds,
    ThresholdMemo,
};

/// The predicate actually in force inside a simulation.
#[derive(Debug, Clone)]
pub enum SimPredicate {
    /// AVMEM slivers.
    Avmem(AvmemPredicate),
    /// Consistent-random baseline.
    Random(RandomPredicate),
}

impl MembershipPredicate for SimPredicate {
    fn threshold(&self, x: Availability, y: Availability) -> f64 {
        match self {
            SimPredicate::Avmem(p) => p.threshold(x, y),
            SimPredicate::Random(p) => p.threshold(x, y),
        }
    }

    fn epsilon(&self) -> f64 {
        match self {
            SimPredicate::Avmem(p) => p.epsilon(),
            SimPredicate::Random(p) => p.epsilon(),
        }
    }
}

/// Per-rebuild memo over [`SimPredicate`]: AVMEM hoists its PDF tables
/// (see [`ThresholdMemo`]); the random baseline is flat already.
enum SimMemo<'p> {
    Avmem(ThresholdMemo<'p>),
    Random { p: f64, epsilon: f64 },
}

impl<'p> SimMemo<'p> {
    fn build(predicate: &'p SimPredicate) -> Self {
        match predicate {
            SimPredicate::Avmem(pred) => SimMemo::Avmem(pred.rebuild_memo()),
            SimPredicate::Random(pred) => SimMemo::Random {
                p: pred.p(),
                epsilon: pred.epsilon(),
            },
        }
    }

    fn source(&self, x: Availability) -> SimSource<'_> {
        match self {
            SimMemo::Avmem(memo) => SimSource::Avmem(memo.source(x)),
            SimMemo::Random { p, epsilon } => SimSource::Random {
                p: *p,
                epsilon: *epsilon,
                x,
            },
        }
    }

    /// The in-band threshold for source availability `x` — the only
    /// per-source integration left in [`SimMemo::source`], and therefore
    /// the piece worth caching across cohorts under a stable oracle
    /// epoch.
    fn horizontal_of(&self, x: Availability) -> f64 {
        match self {
            SimMemo::Avmem(memo) => memo.horizontal(x),
            SimMemo::Random { p, .. } => *p,
        }
    }

    /// Like [`SimMemo::source`], but with the horizontal threshold
    /// supplied by the caller (from [`SimMemo::horizontal_of`], possibly
    /// epoch-cached) instead of recomputed.
    fn source_with(&self, x: Availability, horizontal: f64) -> SimSource<'_> {
        match self {
            SimMemo::Avmem(memo) => {
                SimSource::Avmem(memo.source_with_horizontal(x, horizontal))
            }
            SimMemo::Random { p, epsilon } => SimSource::Random {
                p: *p,
                epsilon: *epsilon,
                x,
            },
        }
    }

    /// Per-candidate vertical thresholds aligned with `index` positions,
    /// when the vertical rule is source-independent (always for the
    /// random baseline; rules I.A/I.B for AVMEM). Computed once per
    /// rebuild so the VS hot loop is one load and one compare.
    fn vertical_table(&self, index: &CandidateIndex) -> Option<Vec<f64>> {
        match self {
            SimMemo::Avmem(memo) => {
                memo.source_independent_vertical(index.entries().iter().map(|&(v, _)| {
                    Availability::saturating(v)
                }))
            }
            SimMemo::Random { p, .. } => Some(vec![*p; index.len()]),
        }
    }
}

/// One source node's memoized thresholds; evaluation is bit-identical to
/// [`MembershipPredicate::classify_hashed`] of the simulation predicate.
enum SimSource<'m> {
    Avmem(SourceThresholds<'m>),
    Random { p: f64, epsilon: f64, x: Availability },
}

impl SimSource<'_> {
    fn epsilon(&self) -> f64 {
        match self {
            SimSource::Avmem(s) => s.epsilon(),
            SimSource::Random { epsilon, .. } => *epsilon,
        }
    }

    /// Threshold for in-band candidates (constant per source node).
    fn horizontal(&self) -> f64 {
        match self {
            SimSource::Avmem(s) => s.horizontal(),
            SimSource::Random { p, .. } => *p,
        }
    }

    /// Threshold for an out-of-band candidate.
    fn vertical(&self, y: Availability) -> f64 {
        match self {
            SimSource::Avmem(s) => s.vertical(y),
            SimSource::Random { p, .. } => *p,
        }
    }

    /// Eq. 1 with a caller-supplied hash; callers skip `y == x`.
    fn classify_hashed(&self, y: Availability, hash: f64) -> Option<Sliver> {
        match self {
            SimSource::Avmem(s) => s.classify_hashed(y, hash),
            SimSource::Random { p, epsilon, x } => (hash <= *p).then(|| {
                if x.distance(y) < *epsilon {
                    Sliver::Horizontal
                } else {
                    Sliver::Vertical
                }
            }),
        }
    }
}

/// Per-worker scratch for the converged rebuild: reused across all nodes
/// a worker processes, so the hot loop allocates nothing per node.
#[derive(Default)]
struct RebuildScratch {
    /// Pair-hash row (used only when hashes are in direct mode).
    row: Vec<f64>,
    /// Accepted horizontal candidates awaiting the decorrelation shuffle.
    hs: Vec<(usize, Availability)>,
    /// Accepted vertical candidates awaiting the decorrelation shuffle.
    vs: Vec<(usize, Availability)>,
}

/// Initiator selection bands used throughout §4.2: LOW ∈ [0, ⅓),
/// MID ∈ [⅓, ⅔), HIGH ∈ [⅔, 1].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InitiatorBand {
    /// True availability in `[0, 1/3)`.
    Low,
    /// True availability in `[1/3, 2/3)`.
    Mid,
    /// True availability in `[2/3, 1]`.
    High,
}

impl InitiatorBand {
    /// The availability interval of the band.
    pub fn bounds(self) -> (f64, f64) {
        match self {
            InitiatorBand::Low => (0.0, 1.0 / 3.0),
            InitiatorBand::Mid => (1.0 / 3.0, 2.0 / 3.0),
            InitiatorBand::High => (2.0 / 3.0, 1.0 + f64::EPSILON),
        }
    }

    /// Whether an availability falls inside the band.
    pub fn contains(self, av: Availability) -> bool {
        let (lo, hi) = self.bounds();
        av.value() >= lo && av.value() < hi
    }
}

/// Internal maintenance events (event-driven mode).
#[derive(Debug, Clone, Copy)]
enum MaintEvent {
    /// Per-period shuffle + discovery at node `i`.
    Tick(usize),
    /// Periodic refresh at node `i`.
    Refresh(usize),
}

/// Seeds handed to a node bootstrapping an empty coarse view (stands in
/// for a bootstrap service answering with a few live peers).
const BOOTSTRAP_SEEDS: usize = 3;

/// Stagger lattice: maintenance offsets are drawn on a grid of this many
/// cohorts per period, so nodes stay unsynchronized (no thundering herd)
/// while same-timestamp cohorts are large enough — `N / 16` nodes — for
/// the batch phases to spread across worker threads.
const STAGGER_COHORTS: u64 = 16;

/// Purpose tags separating the counter-keyed RNG streams of event-driven
/// maintenance. Every stream is `SplitMix64::keyed(&[run_seed, TAG,
/// node, epoch])`: determinism is a property of the key, never of which
/// thread or in which order the stream is drawn. The owning shard is
/// deliberately *not* part of the key — the node index already implies
/// it under any fixed partition, and keying by shard would make every
/// draw depend on the shard count, breaking the bit-equality of runs
/// at different `S`.
const STREAM_STAGGER_TICK: u64 = 1;
const STREAM_STAGGER_REFRESH: u64 = 2;
const STREAM_SHUFFLE: u64 = 3;
const STREAM_BOOTSTRAP: u64 = 4;

/// The discovery/refresh work one node performs in the finalize phase of
/// a cohort. Intra-node order is canonical — discovery (tick) before
/// refresh — so finalize depends only on *which* events fired, never on
/// their position in any queue.
#[derive(Debug, Clone, Copy)]
struct NodeOps {
    node: u32,
    discover: bool,
    refresh: bool,
}

/// A shuffle request crossing from its initiator's shard to its
/// responder's shard: the initiator id (the commit-order key), the
/// responder, and the request message captured at propose time.
#[derive(Debug)]
struct RequestMsg {
    initiator: u32,
    responder: u32,
    request: ShuffleMessage,
}

/// A shuffle reply traveling back to the initiator's shard.
#[derive(Debug)]
struct ReplyMsg {
    initiator: u32,
    reply: ShuffleMessage,
}

/// Per-shard scratch state for one cohort: the shard's work lists, its
/// outgoing message batches (indexed by destination shard), and reusable
/// per-worker buffers. Persisted across cohorts so the hot loop stops
/// allocating once the buffers reach cohort size.
#[derive(Debug, Default)]
struct ShardScratch {
    /// Online ticking nodes of this shard's cohort slice, sorted.
    ticks: Vec<u32>,
    /// Online refreshing nodes, sorted.
    refreshes: Vec<u32>,
    /// Per-node finalize ops, ascending by node.
    ops: Vec<NodeOps>,
    /// Outgoing shuffle requests, batched by the responder's shard.
    req_out: Vec<Vec<RequestMsg>>,
    /// Outgoing replies, batched by the initiator's shard.
    reply_out: Vec<Vec<ReplyMsg>>,
    /// Timed-out proposals (offline target), applied by this shard.
    timeouts: Vec<(u32, NodeId)>,
    /// Bootstrap-sample scratch.
    seeds: Vec<u32>,
    /// Refresh-migration scratch.
    migrants: Vec<(Neighbor, Sliver)>,
    /// Candidate ids collected for one batched oracle call.
    cand_ids: Vec<NodeId>,
    /// Batched estimates, aligned with `cand_ids`.
    cand_avs: Vec<Option<Availability>>,
    /// Shard-local pair-hash cache, built lazily on the first fast-path
    /// finalize (sized from the configured hash budget). Workers read it
    /// without ever touching the global store's LRU mutex.
    pair_cache: Option<ShardPairCache>,
    /// Next-period no-insert set under construction (one discovery op at
    /// a time; reused allocation).
    seen_scratch: Vec<u32>,
    /// Epoch-stamped per-node memos for the finalize fast path.
    fast: FinalizeShardState,
    /// Fast-path effectiveness counters, drained after every cohort.
    stats: FinalizeStats,
    /// Pooled shuffle-entry buffers: proposal, reply, and in-flight
    /// vectors cycle through here instead of the allocator.
    pool: EntryPool,
    /// Commit fast path: per-responder chain heads, indexed by the
    /// responder's offset in the shard (`u32::MAX` = no requests).
    /// Only touched slots are reset after each cohort.
    bucket_head: Vec<u32>,
    /// Per-responder chain tails, parallel to `bucket_head`.
    bucket_tail: Vec<u32>,
    /// Chain links, parallel to the inbound request batch.
    bucket_next: Vec<u32>,
    /// Responder offsets with inbound requests, in first-touch order.
    bucket_touched: Vec<u32>,
}

/// Per-node epoch-stamped memos owned by one shard, indexed by the
/// node's offset inside the shard's slice. Stamps are `epoch + 1`
/// (0 = never stamped), so freshly zeroed state is wholly invalid and
/// no epoch value can collide with "unset".
#[derive(Debug, Default)]
struct FinalizeShardState {
    /// Per node: stamp under which `horizontal` below is memoized.
    /// Stamps are compact `u32` (see [`compact_stamp`]): epochs count
    /// oracle changes, which stay far below `u32::MAX` in any run.
    horizontal_stamp: Vec<u32>,
    /// Per node: memoized horizontal threshold at the stamped epoch.
    horizontal: Vec<f64>,
    /// Per node: stamp under which the node's entire membership is known
    /// fully classified — the refresh short-circuit license.
    classified: Vec<u32>,
    /// Per node: stamp under which `seen` below is valid.
    seen_stamp: Vec<u32>,
    /// Per node: sorted candidate ids whose discovery classification
    /// produced no insert (no sliver, or the oracle had no estimate) at
    /// the `seen_stamp` epoch, rebuilt every discovery from the current
    /// view. Classification is a pure function of `(own_av, y_av, hash,
    /// thresholds)` and estimates are pure within an epoch, so a
    /// same-stamp repeat candidate is skipped before the estimate /
    /// hash / classify pipeline even starts. The list is view-sized
    /// (tens of entries, resident in L1), so the prune probe is a
    /// binary search through hot memory — deliberately not a
    /// shard-global pair map, whose DRAM-sized probe/insert traffic
    /// costs more than the pipeline it skips.
    seen: Vec<Vec<u32>>,
}

impl FinalizeShardState {
    fn ensure_len(&mut self, len: usize) {
        if self.horizontal.len() != len {
            self.horizontal_stamp.resize(len, 0);
            self.horizontal.resize(len, 0.0);
            self.classified.resize(len, 0);
            self.seen_stamp.resize(len, 0);
            self.seen.resize_with(len, Vec::new);
        }
    }
}

/// Epoch → nonzero compact stamp for the finalize memos: `epoch + 1`
/// truncated to `u32`, so freshly zeroed state never matches. Oracle
/// epochs count churn changes (~10^5 per simulated week at 10^6 hosts)
/// and never approach the 32-bit wrap, enforced in debug builds.
fn compact_stamp(epoch: u64) -> u32 {
    debug_assert!(
        epoch < u32::MAX as u64,
        "oracle epoch overflows the compact finalize stamp"
    );
    (epoch as u32).wrapping_add(1)
}

impl ShardScratch {
    /// Resets the per-cohort lists and sizes the outgoing batch tables.
    fn begin_cohort(&mut self, shards: usize) {
        self.ticks.clear();
        self.refreshes.clear();
        self.ops.clear();
        if self.req_out.len() != shards {
            self.req_out.resize_with(shards, Vec::new);
            self.reply_out.resize_with(shards, Vec::new);
        }
    }

    /// Drains the cohort's fast-path counters (folding in the pair
    /// cache's own tallies) for accumulation on the simulation.
    fn take_stats(&mut self) -> FinalizeStats {
        let mut stats = std::mem::take(&mut self.stats);
        if let Some(cache) = self.pair_cache.as_mut() {
            stats.pair_hash.merge(cache.take_stats());
        }
        stats
    }

    /// Merges the sorted tick/refresh lists into per-node finalize ops
    /// (canonical discover-then-refresh order inside each node).
    fn build_ops(&mut self) {
        self.ticks.sort_unstable();
        self.refreshes.sort_unstable();
        self.ops.clear();
        let (mut a, mut b) = (0, 0);
        while a < self.ticks.len() || b < self.refreshes.len() {
            let tick = self.ticks.get(a).copied();
            let refresh = self.refreshes.get(b).copied();
            let ops = match (tick, refresh) {
                (Some(tn), Some(rn)) if tn == rn => {
                    a += 1;
                    b += 1;
                    NodeOps {
                        node: tn,
                        discover: true,
                        refresh: true,
                    }
                }
                (Some(tn), Some(rn)) if tn < rn => {
                    a += 1;
                    NodeOps {
                        node: tn,
                        discover: true,
                        refresh: false,
                    }
                }
                (Some(tn), None) => {
                    a += 1;
                    NodeOps {
                        node: tn,
                        discover: true,
                        refresh: false,
                    }
                }
                (_, Some(rn)) => {
                    b += 1;
                    NodeOps {
                        node: rn,
                        discover: false,
                        refresh: true,
                    }
                }
                (None, None) => unreachable!("loop condition"),
            };
            self.ops.push(ops);
        }
    }

    /// Counting-bucket placement of an inbound request batch: chains the
    /// messages by responder offset without sorting. `responder_off`
    /// yields the responder's offset within the shard for message `idx`.
    ///
    /// Inboxes arrive globally ascending by initiator (each source
    /// shard's outbox is built over its sorted tick list, and shards own
    /// ascending contiguous id ranges, so ascending-shard concatenation
    /// preserves the order), so appending at each chain's tail keeps
    /// every responder's chain in ascending-initiator order — the
    /// canonical commit order the serial reference sorts into.
    fn chain_by_responder<F: Fn(usize) -> usize>(
        &mut self,
        shard_len: usize,
        count: usize,
        responder_off: F,
    ) {
        if self.bucket_head.len() != shard_len {
            self.bucket_head.clear();
            self.bucket_head.resize(shard_len, u32::MAX);
            self.bucket_tail.clear();
            self.bucket_tail.resize(shard_len, u32::MAX);
        }
        self.bucket_next.clear();
        self.bucket_next.resize(count, u32::MAX);
        self.bucket_touched.clear();
        for idx in 0..count {
            let r = responder_off(idx);
            debug_assert!(r < shard_len, "responder outside shard");
            if self.bucket_head[r] == u32::MAX {
                self.bucket_head[r] = idx as u32;
                self.bucket_touched.push(r as u32);
            } else {
                self.bucket_next[self.bucket_tail[r] as usize] = idx as u32;
            }
            self.bucket_tail[r] = idx as u32;
        }
    }
}

/// The deterministic stagger offset of `node`'s periodic event: a
/// uniformly random point on the [`STAGGER_COHORTS`]-slot lattice of one
/// period, keyed — not drawn from shared generator state — so schedule
/// construction order cannot perturb any other random decision.
fn stagger_offset(seed: u64, tag: u64, node: usize, start: SimTime, period: SimDuration) -> SimDuration {
    let period_ms = period.as_millis().max(1);
    let quantum = (period_ms / STAGGER_COHORTS).max(1);
    let cohorts = period_ms / quantum;
    let mut rng = SplitMix64::keyed(&[seed, tag, node as u64, start.as_millis()]);
    SimDuration::from_millis(quantum * rng.range_u64(cohorts))
}

/// Phase A of one batch, for one online ticking node: bootstrap an empty
/// coarse view from the online index, then compute *and apply* the
/// node's shuffle proposal. Touches only `shuffle` (the node's own
/// state); all randomness is counter-keyed by `(run_seed, node,
/// timestamp)`, so any worker on any thread produces the same result.
fn propose_tick(
    seed: u64,
    online: &OnlineIndex,
    now: SimTime,
    i: usize,
    shuffle: &mut ShuffleNode,
    seeds: &mut Vec<u32>,
    pool: &mut EntryPool,
) -> Option<ShuffleProposal> {
    if shuffle.view().is_empty() {
        let mut rng = SplitMix64::keyed(&[seed, STREAM_BOOTSTRAP, i as u64, now.as_millis()]);
        online.sample_excluding(&mut rng, BOOTSTRAP_SEEDS, i, seeds);
        shuffle.bootstrap(seeds.iter().map(|&j| NodeId::new(j as u64)));
    }
    let mut rng = SplitMix64::keyed(&[seed, STREAM_SHUFFLE, i as u64, now.as_millis()]);
    let proposal = shuffle.propose_with(&mut rng, pool)?;
    shuffle.apply_with(&proposal, pool);
    Some(proposal)
}

/// Entry capacity of one shard's local pair-hash cache: the configured
/// hash budget split across shards at ~32 bytes per occupied table slot
/// (packed key + value + hash-table control and load-factor overhead),
/// floored so tiny budgets still cache a few nodes' working sets.
fn pair_cache_capacity(hash_budget: usize, shards: usize) -> usize {
    (hash_budget / shards.max(1) / 32).max(1024)
}

/// Shared per-cohort fast-path state: the predicate memo (threshold
/// tables hoisted once per cohort) and the oracle's change epoch.
#[derive(Clone, Copy)]
struct FastCtx<'a> {
    memo: &'a SimMemo<'a>,
    /// Oracle epoch at the cohort timestamp. `None` for per-querier
    /// noise: thresholds are still memoized within each finalize op, but
    /// nothing may be cached across cohorts and no refresh may be
    /// skipped (estimates can change without any epoch tick).
    epoch: Option<u64>,
}

/// Read-only simulation context for finalize-phase workers: enough state
/// to run discovery and refresh for any node against the post-commit
/// shuffle views, without touching the membership being rewritten.
struct MaintCtx<'a> {
    predicate: &'a SimPredicate,
    oracle: &'a SimOracle,
    hashes: &'a PairHashes,
    shuffles: &'a [ShuffleNode],
    now: SimTime,
    /// Fast-path context, `None` when [`SimConfig::finalize_fast`] is
    /// off — workers then run the reference pair-at-a-time evaluation.
    fast: Option<FastCtx<'a>>,
    /// Entry capacity for each shard's local pair-hash cache.
    pair_capacity: usize,
}

impl MaintCtx<'_> {
    fn estimate(&self, querier: usize, target: usize) -> Option<Availability> {
        self.oracle.estimate(
            NodeId::new(querier as u64),
            NodeId::new(target as u64),
            self.now,
        )
    }

    /// Reference discovery pass over node `i`'s coarse view, straight off
    /// the view iterator — one oracle estimate and one full predicate
    /// evaluation per candidate.
    fn discover_into(&self, i: usize, own: NodeInfo, membership: &mut Membership) {
        for candidate in self.shuffles[i].view().ids() {
            let y = candidate.raw() as usize;
            if y == i || membership.contains(candidate) {
                continue;
            }
            let Some(y_av) = self.estimate(i, y) else {
                continue;
            };
            let info = NodeInfo::new(candidate, y_av);
            if let Some(sliver) =
                self.predicate
                    .classify_hashed(own, info, self.hashes.get(i, y), 0.0)
            {
                membership.insert(
                    Neighbor {
                        id: candidate,
                        cached_availability: y_av,
                        added_at: self.now,
                        refreshed_at: self.now,
                    },
                    sliver,
                );
            }
        }
    }

    /// Reference refresh pass over node `i`'s lists, reclassifying in
    /// place (see [`Membership::refresh_with`]); `migrants` is reusable
    /// scratch.
    fn refresh_into(
        &self,
        i: usize,
        own: NodeInfo,
        membership: &mut Membership,
        migrants: &mut Vec<(Neighbor, Sliver)>,
    ) {
        membership.refresh_with(self.now, migrants, |id| {
            let y = id.raw() as usize;
            let y_av = self.estimate(i, y)?; // oracle lost track: evict
            let sliver =
                self.predicate
                    .classify_hashed(own, NodeInfo::new(id, y_av), self.hashes.get(i, y), 0.0)?;
            Some((y_av, sliver))
        });
    }

    /// Runs one node's finalize ops in canonical intra-node order:
    /// discovery over the post-commit view first, then refresh. The
    /// node's own estimate is resolved once up front — both sub-ops used
    /// to query it independently — and a node its oracle cannot see
    /// skips maintenance entirely, exactly as before.
    fn finalize_node(
        &self,
        ops: NodeOps,
        membership: &mut Membership,
        scratch: &mut ShardScratch,
        shard_start: usize,
        shard_len: usize,
    ) {
        let i = ops.node as usize;
        let Some(own_av) = self.estimate(i, i) else {
            return;
        };
        match self.fast {
            Some(fast) => self.finalize_node_fast(
                fast, ops, own_av, membership, scratch, shard_start, shard_len,
            ),
            None => {
                let own = NodeInfo::new(NodeId::new(i as u64), own_av);
                if ops.discover {
                    self.discover_into(i, own, membership);
                }
                if ops.refresh {
                    self.refresh_into(i, own, membership, &mut scratch.migrants);
                }
            }
        }
    }

    /// Fast-path finalize for one node: memoized thresholds (epoch-cached
    /// when the oracle exposes an epoch), one batched oracle call per
    /// sub-op, shard-local pair hashes, and the refresh short-circuit.
    ///
    /// Bit-identical to the reference path (pinned by the fast-vs-slow
    /// legs of the `event_driven_equivalence` suite): within one epoch
    /// estimates are pure in `(querier, target)`, the memoized source
    /// thresholds match `classify_hashed` decision for decision (pinned
    /// by the predicate memo tests), and a skipped refresh is one whose
    /// full pass would provably evict nothing, migrate nothing, and
    /// rewrite every cached availability unchanged — only `refreshed_at`
    /// advances, which [`Membership::touch_refreshed`] replays.
    #[allow(clippy::too_many_arguments)]
    fn finalize_node_fast(
        &self,
        fast: FastCtx<'_>,
        ops: NodeOps,
        own_av: Availability,
        membership: &mut Membership,
        scratch: &mut ShardScratch,
        shard_start: usize,
        shard_len: usize,
    ) {
        let i = ops.node as usize;
        let ShardScratch {
            cand_ids,
            cand_avs,
            pair_cache,
            seen_scratch,
            fast: state,
            stats,
            migrants,
            ..
        } = scratch;
        let cache = pair_cache
            .get_or_insert_with(|| ShardPairCache::with_capacity(self.pair_capacity));
        // Stamps are `epoch + 1`, so zeroed state never matches.
        let stamp = fast.epoch.map(compact_stamp);
        let local = i - shard_start;
        let horizontal = match stamp {
            Some(stamp) => {
                state.ensure_len(shard_len);
                if state.horizontal_stamp[local] == stamp {
                    stats.memo_hits += 1;
                    state.horizontal[local]
                } else {
                    let h = fast.memo.horizontal_of(own_av);
                    state.horizontal_stamp[local] = stamp;
                    state.horizontal[local] = h;
                    stats.memo_misses += 1;
                    h
                }
            }
            None => {
                stats.memo_bypassed += 1;
                fast.memo.horizontal_of(own_av)
            }
        };
        let source = fast.memo.source_with(own_av, horizontal);
        let querier = NodeId::new(i as u64);
        if ops.discover {
            // Candidates first — estimates are pure within the cohort, so
            // collecting before classifying changes nothing — then one
            // batched oracle call for the lot. A repeat candidate whose
            // pair already classified to no insert at this epoch is
            // pruned before the pipeline starts: every classification
            // input (own and candidate availability, pair hash,
            // thresholds) is fixed within the epoch, so the outcome
            // cannot change. The next no-insert set is rebuilt as we go:
            // pruned repeats carry over, novel no-inserts join after
            // classification.
            cand_ids.clear();
            seen_scratch.clear();
            let prev_valid = match stamp {
                Some(stamp) => {
                    state.ensure_len(shard_len);
                    state.seen_stamp[local] == stamp
                }
                None => false,
            };
            for candidate in self.shuffles[i].view().ids() {
                let y = candidate.raw() as usize;
                if y == i {
                    continue;
                }
                if prev_valid && state.seen[local].binary_search(&(y as u32)).is_ok() {
                    stats.discover_pruned += 1;
                    seen_scratch.push(y as u32);
                    continue;
                }
                if membership.contains(candidate) {
                    continue;
                }
                cand_ids.push(candidate);
            }
            let was_empty = membership.is_empty();
            let mut inserted = false;
            if !cand_ids.is_empty() {
                self.oracle
                    .estimate_batch(querier, cand_ids, self.now, cand_avs);
                stats.batched_estimates += cand_ids.len() as u64;
                for (candidate, y_av) in cand_ids.iter().zip(cand_avs.iter()) {
                    let y = candidate.raw() as usize;
                    let mut kept = false;
                    if let Some(y_av) = *y_av {
                        let hash = cache.get(self.hashes, i, y);
                        if let Some(sliver) = source.classify_hashed(y_av, hash) {
                            kept = true;
                            inserted |= membership.insert(
                                Neighbor {
                                    id: *candidate,
                                    cached_availability: y_av,
                                    added_at: self.now,
                                    refreshed_at: self.now,
                                },
                                sliver,
                            );
                        }
                    }
                    if !kept && stamp.is_some() {
                        seen_scratch.push(y as u32);
                    }
                }
            }
            if let Some(stamp) = stamp {
                // Entries that left the view drop out here; if one comes
                // back later it re-runs the pipeline (identically).
                seen_scratch.sort_unstable();
                seen_scratch.dedup();
                std::mem::swap(&mut state.seen[local], seen_scratch);
                state.seen_stamp[local] = stamp;
            }
            if inserted {
                if let Some(stamp) = stamp {
                    // Inserts are classified at the current epoch: the
                    // list stays uniformly stamped only if it was empty
                    // or already at this epoch; otherwise it is mixed
                    // and must be fully refreshed before any skip.
                    let slot = &mut state.classified[local];
                    *slot = if was_empty || *slot == stamp { stamp } else { 0 };
                }
            }
        }
        if ops.refresh {
            let skip = match stamp {
                Some(stamp) => state.classified[local] == stamp,
                None => false,
            };
            if skip {
                stats.refresh_skipped += 1;
                membership.touch_refreshed(self.now);
            } else {
                stats.refresh_evaluated += 1;
                // Collection order (HS then VS) matches the order
                // `refresh_with` evaluates entries in, so the batched
                // estimates are consumed by a plain cursor.
                cand_ids.clear();
                cand_ids.extend(membership.neighbors(SliverScope::Both).map(|nb| nb.id));
                if !cand_ids.is_empty() {
                    self.oracle
                        .estimate_batch(querier, cand_ids, self.now, cand_avs);
                    stats.batched_estimates += cand_ids.len() as u64;
                }
                let mut k = 0;
                membership.refresh_with(self.now, migrants, |id| {
                    debug_assert_eq!(cand_ids[k], id, "refresh order != collection order");
                    let y_av = cand_avs[k];
                    k += 1;
                    let y_av = y_av?; // oracle lost track: evict
                    let hash = cache.get(self.hashes, i, id.raw() as usize);
                    let sliver = source.classify_hashed(y_av, hash)?;
                    Some((y_av, sliver))
                });
                if let Some(stamp) = stamp {
                    state.ensure_len(shard_len);
                    state.classified[local] = stamp;
                }
            }
        }
    }
}

/// The persistent event-driven maintenance schedule, sharded.
///
/// Built once, on the first event-driven advance, and kept across
/// [`AvmemSim::warm_up`] / [`AvmemSim::advance_to`] calls: the per-shard
/// engines carry every node's pending tick/refresh events forward, so
/// resuming maintenance costs nothing instead of the `O(N)` schedule
/// rebuild (and re-staggering) each call used to pay. A periodic
/// protocol's phase is a property of the node, not of how the driver
/// chops the timeline into advances — `warm_up(1h)` twice is identical
/// to `warm_up(2h)` once.
///
/// Each shard owns its slice of the population: its own event queue (one
/// engine of the [`EngineGroup`]), its cohort batch, and its scratch
/// (work lists + outgoing message batches). The group's aligned cohort
/// pop guarantees the union of per-shard batches is exactly the cohort a
/// single global queue would pop.
#[derive(Debug)]
struct MaintSchedule {
    group: EngineGroup<MaintEvent>,
    part: ShardPartition,
    /// Per-shard cohort scratch, reused across batches.
    batches: Vec<Vec<MaintEvent>>,
    /// Per-shard phase scratch, reused across batches.
    scratches: Vec<ShardScratch>,
    /// Per-destination-shard inbound request batches (transpose buffer).
    req_in: Vec<Vec<RequestMsg>>,
    /// Per-destination-shard inbound reply batches (transpose buffer).
    reply_in: Vec<Vec<ReplyMsg>>,
}

impl MaintSchedule {
    /// Builds the initial schedule: every node's tick and refresh events
    /// staggered on the period lattice, each landing in its owning
    /// shard's queue.
    fn build(
        seed: u64,
        n: usize,
        shards: usize,
        now: SimTime,
        protocol_period: SimDuration,
        refresh_period: SimDuration,
    ) -> Self {
        let part = ShardPartition::new(n, shards);
        let shards = part.shards();
        let mut group = EngineGroup::new(shards);
        for i in 0..n {
            let s = part.owner(i);
            let tick = stagger_offset(seed, STREAM_STAGGER_TICK, i, now, protocol_period);
            let refresh = stagger_offset(seed, STREAM_STAGGER_REFRESH, i, now, refresh_period);
            group.schedule(s, now + tick, MaintEvent::Tick(i));
            group.schedule(s, now + refresh, MaintEvent::Refresh(i));
        }
        MaintSchedule {
            group,
            part,
            batches: (0..shards).map(|_| Vec::new()).collect(),
            scratches: (0..shards).map(|_| ShardScratch::default()).collect(),
            req_in: (0..shards).map(|_| Vec::new()).collect(),
            reply_in: (0..shards).map(|_| Vec::new()).collect(),
        }
    }
}

/// Phase names of the harness [`Tracer`], index-aligned with the
/// `PH_*` constants. Spans are keyed `(phase, lane)`: lane 0 is the
/// coordinator (whose totals are the [`PhaseTimings`] wall-clock), the
/// other lanes accumulate shard-worker busy time.
const PHASES: &[&str] = &["oracle", "propose", "commit", "finalize"];
const PH_ORACLE: usize = 0;
const PH_PROPOSE: usize = 1;
const PH_COMMIT: usize = 2;
const PH_FINALIZE: usize = 3;

/// Cumulative wall-clock spent in each phase of maintenance, plus the
/// number of timestamp cohorts processed. Exposed through
/// [`AvmemSim::phase_timings`] so drivers (the scenario runner, the
/// shard-scaling bench) can report where a run's time went — in
/// particular what share the commit/merge barrier claims. Assembled
/// from the harness's span [`Tracer`] (coordinator lane).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimings {
    /// Oracle advancement + online-index refresh (per distinct cohort
    /// timestamp; includes AVMON ping/aggregate processing).
    pub oracle: Duration,
    /// Propose phase: bootstrap + shuffle proposal, per ticking node.
    pub propose: Duration,
    /// Commit phase: message-batch transpose and request/reply/timeout
    /// application.
    pub commit: Duration,
    /// Finalize phase: discovery + refresh over post-commit views. In
    /// converged mode, the predicate rebuild is accounted here.
    pub finalize: Duration,
    /// Timestamp cohorts processed.
    pub cohorts: u64,
}

/// Cumulative effectiveness counters of the finalize-phase fast path
/// (see [`SimConfig::finalize_fast`]), exposed through
/// [`AvmemSim::finalize_stats`]. Purely observational: runs at different
/// shard or thread counts may split the cache work differently, so the
/// counters sit outside every equivalence contract — membership state
/// stays bit-identical whatever they read.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FinalizeStats {
    /// Finalize ops whose horizontal threshold came from the per-node
    /// epoch memo.
    pub memo_hits: u64,
    /// Finalize ops that recomputed (and re-stamped) the threshold.
    pub memo_misses: u64,
    /// Finalize ops evaluated without epoch memoization (per-querier
    /// noise exposes no epoch; thresholds are still hoisted per op).
    pub memo_bypassed: u64,
    /// Refresh ops short-circuited to a timestamp touch: the membership
    /// is unchanged since its last same-epoch classification.
    pub refresh_skipped: u64,
    /// Refresh ops that ran the full reclassification pass.
    pub refresh_evaluated: u64,
    /// Discovery candidates skipped because the pair already classified
    /// to no insert at the current epoch.
    pub discover_pruned: u64,
    /// Availability estimates served through batched oracle calls.
    pub batched_estimates: u64,
    /// Shard-local pair-hash cache counters.
    pub pair_hash: PairCacheStats,
}

impl FinalizeStats {
    /// Folds another accumulator into this one.
    pub fn merge(&mut self, other: FinalizeStats) {
        self.memo_hits += other.memo_hits;
        self.memo_misses += other.memo_misses;
        self.memo_bypassed += other.memo_bypassed;
        self.refresh_skipped += other.refresh_skipped;
        self.refresh_evaluated += other.refresh_evaluated;
        self.discover_pruned += other.discover_pruned;
        self.batched_estimates += other.batched_estimates;
        self.pair_hash.merge(other.pair_hash);
    }
}

/// Lightweight overlay-health numbers, computed by
/// [`AvmemSim::health_stats`] without building an [`OverlaySnapshot`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthStats {
    /// Nodes online at sample time.
    pub online: usize,
    /// Mean total degree (|HS| + |VS|) over online nodes.
    pub mean_degree: f64,
    /// Fraction of online nodes inside the largest weakly-connected
    /// component of the both-sliver overlay.
    pub largest_component: f64,
}

/// The full-system simulation.
pub struct AvmemSim {
    trace: ChurnTrace,
    config: SimConfig,
    predicate: SimPredicate,
    oracle: SimOracle,
    hashes: Arc<PairHashes>,
    memberships: Vec<Membership>,
    shuffles: Vec<ShuffleNode>,
    now: SimTime,
    net: Network,
    rng: Xoshiro256,
    /// Per-slot cache of the online population (bootstrap seeding,
    /// initiator selection); refreshed lazily as the clock advances.
    online: OnlineIndex,
    n_star: f64,
    /// Seed for the per-node randomized candidate order used by the
    /// converged rebuild (see [`AvmemSim::rebuild_converged`]).
    member_order_seed: u64,
    /// Persistent event-driven schedule (`None` until the first
    /// event-driven advance builds it).
    maint: Option<MaintSchedule>,
    /// Per-phase maintenance span accumulator (replaces the old ad-hoc
    /// `Instant` arithmetic; [`AvmemSim::phase_timings`] reads its
    /// coordinator lane).
    tracer: Tracer,
    /// Registry-backed instruments, present once
    /// [`AvmemSim::set_metrics`] attaches a registry.
    metrics: Option<HarnessInstruments>,
    /// Cumulative finalize fast-path counters.
    fin_stats: FinalizeStats,
}

/// Instrument handles the harness records into when a registry is
/// attached; everything here is off the per-node hot paths (the barrier
/// loops run at most `shards²` times per cohort).
struct HarnessInstruments {
    /// Cross-shard exchange batch sizes at the transpose barriers.
    exchange_req_batch: Histogram,
    exchange_reply_batch: Histogram,
    /// Cumulative messages moved across the barriers.
    exchange_requests: Counter,
    exchange_replies: Counter,
}

impl std::fmt::Debug for AvmemSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AvmemSim")
            .field("nodes", &self.trace.num_nodes())
            .field("now", &self.now)
            .field("n_star", &self.n_star)
            .field("predicate", &self.predicate)
            .finish_non_exhaustive()
    }
}

impl AvmemSim {
    /// Builds a simulation over `trace` with the given configuration.
    ///
    /// `N*` is derived as the trace's mean online population and the
    /// availability PDF as the (availability-weighted) distribution of
    /// online nodes — both quantities the paper assumes are computed
    /// offline by a crawler and distributed consistently to all nodes.
    pub fn new(trace: ChurnTrace, config: SimConfig) -> Self {
        let hashes = Arc::new(PairHashes::with_budget(
            trace.num_nodes(),
            config.hash_budget,
        ));
        AvmemSim::with_hashes(trace, config, hashes)
    }

    /// Like [`AvmemSim::new`] but reusing a precomputed pair-hash matrix
    /// — experiment sweeps building many simulations over the same
    /// population share the `O(N²)` hashing work.
    ///
    /// # Panics
    ///
    /// Panics if the matrix size does not match the trace population.
    pub fn with_hashes(trace: ChurnTrace, config: SimConfig, hashes: Arc<PairHashes>) -> Self {
        let n = trace.num_nodes();
        assert_eq!(hashes.len(), n, "hash matrix size must match population");
        let stats = trace.stats();
        let n_star = stats.mean_online.max(2.0);

        let weighted: Vec<(Availability, f64)> = (0..n)
            .map(|i| {
                let av = trace.long_term_availability(i);
                (av, av.value())
            })
            .collect();
        let pdf = AvailabilityPdf::from_weighted_sample(&weighted, config.pdf_buckets);

        let predicate = match config.predicate {
            PredicateChoice::Avmem {
                epsilon,
                vertical,
                horizontal,
            } => SimPredicate::Avmem(AvmemPredicate::new(
                epsilon, n_star, vertical, horizontal, pdf,
            )),
            PredicateChoice::Random { expected_degree } => {
                SimPredicate::Random(RandomPredicate::with_expected_degree(
                    expected_degree,
                    n as f64,
                ))
            }
        };

        let mut seeder = SplitMix64::new(config.seed);
        let mut oracle = SimOracle::build(config.oracle, &trace, seeder.next_u64());
        // The AVMON service sweeps its ping/aggregate phases on the
        // worker pool; fan them out like the maintenance engine's
        // per-cohort phases, partitioned by the same shard ownership map
        // (bit-identical for every shard and thread count).
        oracle.set_threads(config.engine.threads());
        oracle.set_shards(config.engine.shards());
        let net = Network::new(config.latency, 0.0, seeder.next_u64());
        let rng = Xoshiro256::new(seeder.next_u64());

        let shuffle_config = ShuffleConfig::for_system_size(n);
        let mut shuffle_seeder = SplitMix64::new(seeder.next_u64());
        let shuffles = (0..n)
            .map(|i| {
                ShuffleNode::new(
                    NodeId::new(i as u64),
                    shuffle_config,
                    shuffle_seeder.fork(i as u64).next_u64(),
                )
            })
            .collect();

        AvmemSim {
            hashes,
            memberships: (0..n).map(|i| Membership::new(NodeId::new(i as u64))).collect(),
            trace,
            config,
            predicate,
            oracle,
            shuffles,
            now: SimTime::ZERO,
            net,
            rng,
            online: OnlineIndex::new(),
            n_star,
            member_order_seed: seeder.next_u64(),
            maint: None,
            tracer: Tracer::new(PHASES),
            metrics: None,
            fin_stats: FinalizeStats::default(),
        }
    }

    /// Attaches a metrics registry: phase spans gain live span-duration
    /// histograms, the sharded engine records cross-shard exchange batch
    /// sizes, and the oracle (AVMON) reports slot-advance cost. Without
    /// a registry the harness only pays the tracer's relaxed atomic
    /// adds — instrumentation stays allocation-free either way.
    pub fn set_metrics(&mut self, registry: &Arc<Registry>) {
        self.tracer.attach(registry, "avmem");
        self.oracle.set_metrics(registry);
        let batch_help = "Cross-shard exchange batch sizes at the phase barriers (messages).";
        self.metrics = Some(HarnessInstruments {
            exchange_req_batch: registry.histogram(
                "avmem_exchange_batch_msgs",
                batch_help,
                &[("dir", "request")],
            ),
            exchange_reply_batch: registry.histogram(
                "avmem_exchange_batch_msgs",
                batch_help,
                &[("dir", "reply")],
            ),
            exchange_requests: registry.counter(
                "avmem_exchange_msgs_total",
                "Messages moved across the shard barriers.",
                &[("dir", "request")],
            ),
            exchange_replies: registry.counter(
                "avmem_exchange_msgs_total",
                "Messages moved across the shard barriers.",
                &[("dir", "reply")],
            ),
        });
    }

    /// The harness's phase-span tracer (publishable into a registry by
    /// the serve loop).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The churn trace driving the simulation.
    pub fn trace(&self) -> &ChurnTrace {
        &self.trace
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The derived stable-system-size parameter `N*`.
    pub fn n_star(&self) -> f64 {
        self.n_star
    }

    /// The predicate in force.
    pub fn predicate(&self) -> &SimPredicate {
        &self.predicate
    }

    /// The availability oracle in force.
    pub fn oracle(&self) -> &SimOracle {
        &self.oracle
    }

    /// A node's membership lists.
    ///
    /// # Panics
    ///
    /// Panics if `id` is outside the population.
    pub fn membership(&self, id: NodeId) -> &Membership {
        &self.memberships[self.index(id)]
    }

    fn index(&self, id: NodeId) -> usize {
        let i = id.raw() as usize;
        assert!(i < self.trace.num_nodes(), "unknown node {id}");
        i
    }

    fn estimated_availability(&self, querier: usize, target: usize) -> Option<Availability> {
        self.oracle.estimate(
            NodeId::new(querier as u64),
            NodeId::new(target as u64),
            self.now,
        )
    }

    /// Advances simulation time by `duration`, running maintenance.
    ///
    /// In [`MaintenanceMode::Converged`] the membership lists are rebuilt
    /// from the predicate at the end of the interval. In
    /// [`MaintenanceMode::EventDriven`] the shuffle/discovery/refresh
    /// sub-protocols run period by period through the event engine; the
    /// schedule persists across calls, so chopping an interval into many
    /// `warm_up` calls produces the same state as one big call.
    pub fn warm_up(&mut self, duration: SimDuration) {
        let target = self.now + duration;
        match self.config.maintenance {
            MaintenanceMode::Converged => {
                {
                    let _span = self.tracer.span(PH_ORACLE, 0);
                    self.oracle.advance(&self.trace, target);
                    self.now = target;
                    self.online.refresh(&self.trace, target);
                }
                // A span guard would hold `&self.tracer` across the
                // `&mut self` rebuild; record the measured time instead.
                let t0 = Instant::now();
                self.rebuild_converged();
                self.tracer.record(PH_FINALIZE, 0, t0.elapsed());
            }
            MaintenanceMode::EventDriven {
                protocol_period,
                refresh_period,
            } => {
                self.run_event_driven(target, protocol_period, refresh_period);
            }
        }
    }

    /// Advances the simulation clock to the absolute instant `target`,
    /// running any maintenance that falls due on the way — the injection
    /// hook scenario drivers interleave operation traffic with.
    ///
    /// In [`MaintenanceMode::EventDriven`] every timestamp cohort with
    /// `time ≤ target` is processed (identically to [`AvmemSim::warm_up`],
    /// off the same persistent schedule), so operations fired after the
    /// call observe the live, possibly-unconverged overlay exactly as it
    /// stands between cohorts. In [`MaintenanceMode::Converged`] only the
    /// clock, the oracle and the online index advance — the lists keep
    /// their last rebuilt state (call [`AvmemSim::warm_up`] when a rebuild
    /// is wanted), so a driver controls staleness explicitly.
    ///
    /// A `target` at or before the current clock is a no-op.
    pub fn advance_to(&mut self, target: SimTime) {
        if target <= self.now {
            return;
        }
        match self.config.maintenance {
            MaintenanceMode::Converged => {
                let _span = self.tracer.span(PH_ORACLE, 0);
                self.oracle.advance(&self.trace, target);
                self.now = target;
                self.online.refresh(&self.trace, target);
            }
            MaintenanceMode::EventDriven {
                protocol_period,
                refresh_period,
            } => {
                self.run_event_driven(target, protocol_period, refresh_period);
            }
        }
    }

    /// Timestamp of the next pending maintenance event, if any — `None`
    /// for converged maintenance or before the first event-driven advance.
    pub fn next_maintenance_at(&self) -> Option<SimTime> {
        self.maint.as_ref().and_then(|m| m.group.peek_time())
    }

    /// Cumulative per-phase maintenance wall-clock since construction
    /// (the coordinator lane of the span tracer).
    pub fn phase_timings(&self) -> PhaseTimings {
        PhaseTimings {
            oracle: self.tracer.lane_total(PH_ORACLE, 0),
            propose: self.tracer.lane_total(PH_PROPOSE, 0),
            commit: self.tracer.lane_total(PH_COMMIT, 0),
            finalize: self.tracer.lane_total(PH_FINALIZE, 0),
            cohorts: self.tracer.cohorts(),
        }
    }

    /// Cumulative finalize fast-path counters since construction. All
    /// zero when [`SimConfig::finalize_fast`] is off or no event-driven
    /// maintenance has run (the converged rebuild has its own fast path
    /// and is not counted here).
    pub fn finalize_stats(&self) -> FinalizeStats {
        self.fin_stats
    }

    /// Cumulative counters of the shared pair-hash row store (mode,
    /// rows built, LRU hit/miss/eviction traffic, thrash-bypass state).
    pub fn hash_store_stats(&self) -> PairStoreStats {
        self.hashes.store_stats()
    }

    /// Number of maintenance events currently scheduled (0 for converged
    /// maintenance or before the first event-driven advance) — the
    /// service mode's queue-depth gauge.
    pub fn pending_maintenance(&self) -> usize {
        self.maint.as_ref().map_or(0, |m| m.group.pending())
    }

    /// Rebuilds every node's lists directly from the predicate — the
    /// fixed point the discovery protocol converges to.
    ///
    /// Candidates are inserted in a *per-node randomized order*, not
    /// index order: real discovery meets candidates in shuffled-view
    /// order, and the deterministic gossip iteration of §3.2 relies on
    /// different nodes having decorrelated list orders (identical
    /// prefixes would make every gossiper target the same few nodes).
    /// Accepted candidates are collected first and each list is then
    /// Fisher–Yates-shuffled with the node's private seed — the
    /// restriction of a uniform permutation of the population to the
    /// accepted subset is itself a uniform permutation of that subset,
    /// so this matches the seed version's shuffle-everything-then-filter
    /// order in distribution at `O(degree)` instead of `O(N)` RNG work
    /// per node.
    ///
    /// The rebuild is the simulator's hot path and is heavily optimized —
    /// see [`AvmemSim::rebuild_node`] — but produces HS/VS *sets*
    /// identical to a naive scan classifying every ordered pair (the
    /// `rebuild_equivalence` integration tests pin this down). Nodes are
    /// independent, so the population is rebuilt in parallel on the
    /// persistent worker pool; results do not depend on the thread count.
    fn rebuild_converged(&mut self) {
        let n = self.trace.num_nodes();
        // With a querier-independent oracle (exact, shared-noise, AVMON
        // aggregates) all nodes agree on every availability, so one
        // snapshot and one availability-sorted index serve the whole
        // rebuild: HS candidates come from a band range-scan, VS
        // candidates from its complement. A per-querier oracle forces
        // per-source estimates (full scan).
        let shared: Option<CandidateIndex> = self.oracle.querier_independent().then(|| {
            CandidateIndex::build((0..n).map(|y| (y, self.estimated_availability(y, y))))
        });
        let memo = SimMemo::build(&self.predicate);
        let vertical_table: Option<Vec<f64>> =
            shared.as_ref().and_then(|index| memo.vertical_table(index));
        let mut memberships = std::mem::take(&mut self.memberships);
        let sim = &*self;
        par_chunks_mut(&mut memberships, 1, default_threads(), |offset, chunk| {
            let mut scratch = RebuildScratch::default();
            for (k, slot) in chunk.iter_mut().enumerate() {
                *slot = sim.rebuild_node(
                    offset + k,
                    &memo,
                    shared.as_ref(),
                    vertical_table.as_deref(),
                    &mut scratch,
                );
            }
        });
        self.memberships = memberships;
    }

    /// Builds one node's converged membership lists.
    ///
    /// Fast-path structure (all equivalences are set-level, pinned by
    /// tests):
    ///
    /// * thresholds come from the per-rebuild [`SimMemo`] — the
    ///   horizontal band integrals once per node, vertical PDF lookups
    ///   from per-bucket tables — instead of two PDF integrations per
    ///   in-band pair;
    /// * pair hashes come from the row cache ([`PairHashes::row`]);
    /// * with a shared availability index, HS candidates are enumerated
    ///   by an `O(log N + band)` range-scan and VS candidates by its
    ///   complement (only float-slack stragglers pay a distance check);
    ///   both accepted lists are then shuffled per node for decorrelated
    ///   insertion order.
    fn rebuild_node(
        &self,
        x: usize,
        memo: &SimMemo<'_>,
        shared: Option<&CandidateIndex>,
        vertical_table: Option<&[f64]>,
        scratch: &mut RebuildScratch,
    ) -> Membership {
        let n = self.trace.num_nodes();
        let mut membership = Membership::new(NodeId::new(x as u64));
        let Some(own_av) = self.estimated_availability(x, x) else {
            return membership;
        };
        let source = memo.source(own_av);
        let RebuildScratch { row, hs, vs } = scratch;
        hs.clear();
        vs.clear();
        let row: &[f64] = self.hashes.row(x, row);
        match shared {
            Some(index) => {
                let epsilon = source.epsilon();
                let horizontal = source.horizontal();
                let entries = index.entries();
                let (band_start, band_end) = index.fuzzy_range(own_av, epsilon);
                // In and around the band: the exact distance check picks
                // the sliver; the memoized horizontal threshold is one
                // constant for every in-band candidate.
                for &(v, y) in &entries[band_start..band_end] {
                    let y = y as usize;
                    if y == x {
                        continue;
                    }
                    let y_av = Availability::saturating(v);
                    if own_av.distance(y_av) < epsilon {
                        if row[y] <= horizontal {
                            hs.push((y, y_av));
                        }
                    } else if row[y] <= source.vertical(y_av) {
                        vs.push((y, y_av));
                    }
                }
                // Certainly outside the band: pure VS. With a
                // source-independent vertical rule the thresholds are
                // precomputed per rebuild, aligned with the index.
                if let Some(table) = vertical_table {
                    for k in 0..band_start {
                        let (v, y) = entries[k];
                        if row[y as usize] <= table[k] {
                            vs.push((y as usize, Availability::saturating(v)));
                        }
                    }
                    for k in band_end..entries.len() {
                        let (v, y) = entries[k];
                        if row[y as usize] <= table[k] {
                            vs.push((y as usize, Availability::saturating(v)));
                        }
                    }
                } else {
                    for &(v, y) in entries[..band_start].iter().chain(&entries[band_end..]) {
                        let y = y as usize;
                        let y_av = Availability::saturating(v);
                        if row[y] <= source.vertical(y_av) {
                            vs.push((y, y_av));
                        }
                    }
                }
            }
            None => {
                // Querier-dependent estimates: full per-source scan.
                for (y, &hash) in row.iter().enumerate().take(n) {
                    if y == x {
                        continue;
                    }
                    let Some(y_av) = self.estimated_availability(x, y) else {
                        continue;
                    };
                    match source.classify_hashed(y_av, hash) {
                        Some(Sliver::Horizontal) => hs.push((y, y_av)),
                        Some(Sliver::Vertical) => vs.push((y, y_av)),
                        None => {}
                    }
                }
            }
        }
        let mut order_rng = SplitMix64::new(
            self.member_order_seed ^ (x as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        );
        order_rng.shuffle(hs);
        order_rng.shuffle(vs);
        let neighbor = |y: usize, y_av: Availability| Neighbor {
            id: NodeId::new(y as u64),
            cached_availability: y_av,
            added_at: self.now,
            refreshed_at: self.now,
        };
        for &(y, y_av) in hs.iter() {
            membership.insert(neighbor(y, y_av), Sliver::Horizontal);
        }
        for &(y, y_av) in vs.iter() {
            membership.insert(neighbor(y, y_av), Sliver::Vertical);
        }
        membership
    }

    /// Runs the shuffle/discovery/refresh sub-protocols through the
    /// sharded event queues, one *timestamp cohort* at a time.
    ///
    /// Node offsets are staggered on a coarse per-period lattice (see
    /// [`STAGGER_COHORTS`]) so cohorts are sizeable, and each cohort runs
    /// in canonical phases:
    ///
    /// 1. **propose** — every online ticking node bootstraps (if its view
    ///    is empty) and computes+applies its shuffle proposal, touching
    ///    only its own state, with counter-keyed randomness. The target's
    ///    online status is resolved here too: an offline or out-of-range
    ///    target becomes a timeout notice; an online one becomes a
    ///    request message addressed to the responder's shard.
    /// 2. **commit** — every responder applies its inbound requests in
    ///    ascending initiator id (producing replies), then every
    ///    initiator applies its reply or timeout. Request application
    ///    touches only responder state and reply application only
    ///    initiator state, so both sub-phases are per-node independent;
    ///    the fixed ordering makes the outcome independent of how
    ///    requests were batched.
    /// 3. **finalize** — discovery over the post-commit view, then
    ///    refresh, per node (canonical intra-node order). Per-node
    ///    independent.
    ///
    /// [`MaintenanceEngine::Serial`] and [`MaintenanceEngine::Sharded`]
    /// execute these identical semantics; results are bit-equal across
    /// engines, shard counts and thread counts (pinned by the
    /// `event_driven_equivalence` integration tests).
    fn run_event_driven(
        &mut self,
        target: SimTime,
        protocol_period: SimDuration,
        refresh_period: SimDuration,
    ) {
        // Resolved once: `threads()` may probe the machine (a syscall),
        // far too costly per batch. The shard count is fixed at first
        // schedule build and reused for the life of the simulation.
        let threads = self.config.engine.threads();
        let shards = self.config.engine.shards();
        // The schedule is built once — on the first event-driven advance —
        // and then carried across calls with its pending events intact
        // (see [`MaintSchedule`]). Only that first call pays the `O(N)`
        // population scan and stagger draw.
        let mut maint = self.maint.take().unwrap_or_else(|| {
            MaintSchedule::build(
                self.config.seed,
                self.trace.num_nodes(),
                shards,
                self.now,
                protocol_period,
                refresh_period,
            )
        });
        // One shard driven by one thread degenerates to the straight-line
        // reference (they are bit-identical), skipping the message-batch
        // bookkeeping single-core machines would pay for nothing.
        let straight_line = maint.part.shards() <= 1 && threads <= 1;
        while let Some(t) = maint.group.pop_batch_until(target, &mut maint.batches) {
            // Shared time-dependent state advances once per distinct
            // timestamp: the oracle (AVMON ping processing) and the
            // online index (slot-boundary crossings).
            {
                let _span = self.tracer.span(PH_ORACLE, 0);
                self.oracle.advance(&self.trace, t);
                self.online.refresh(&self.trace, t);
                self.now = self.now.max(t);
            }
            self.tracer.tick_cohort();
            if straight_line {
                let MaintSchedule {
                    ref batches,
                    ref mut scratches,
                    ..
                } = maint;
                self.run_batch_serial(t, &batches[0], &mut scratches[0]);
            } else {
                let MaintSchedule {
                    part,
                    ref batches,
                    ref mut scratches,
                    ref mut req_in,
                    ref mut reply_in,
                    ..
                } = maint;
                self.run_batch_sharded(t, part, batches, scratches, req_in, reply_in, threads);
            }
            for (s, batch) in maint.batches.iter().enumerate() {
                for &event in batch.iter() {
                    match event {
                        MaintEvent::Tick(_) => {
                            maint.group.schedule(s, t + protocol_period, event)
                        }
                        MaintEvent::Refresh(_) => {
                            maint.group.schedule(s, t + refresh_period, event)
                        }
                    }
                }
            }
        }
        self.maint = Some(maint);
        let _span = self.tracer.span(PH_ORACLE, 0);
        self.oracle.advance(&self.trace, target);
        self.now = target;
        self.online.refresh(&self.trace, target);
    }

    /// Reference implementation of one cohort: the canonical phases as
    /// plain sequential loops over the whole batch. This is the semantics
    /// [`AvmemSim::run_batch_sharded`] is pinned against. Its finalize
    /// phase runs off the same per-node ops list — and the same fast
    /// path — as the sharded engine, with the whole population as one
    /// shard, so single-core runs get the full finalize speedup.
    fn run_batch_serial(&mut self, t: SimTime, batch: &[MaintEvent], scratch: &mut ShardScratch) {
        let seed = self.config.seed;
        let n = self.trace.num_nodes();
        // Phase 1 — propose over the sorted tick list (propose randomness
        // is keyed per node, so iterating the sorted list instead of raw
        // event order changes nothing), capturing each proposal's request
        // — in ascending-initiator order, the property the commit chains
        // rely on — or its timeout, in the pooled cohort buffers.
        let tp = self.tracer.span(PH_PROPOSE, 0);
        scratch.begin_cohort(1);
        for &event in batch {
            match event {
                MaintEvent::Tick(i) if self.trace.is_online(i, t) => {
                    scratch.ticks.push(i as u32);
                }
                MaintEvent::Refresh(i) if self.trace.is_online(i, t) => {
                    scratch.refreshes.push(i as u32);
                }
                _ => {}
            }
        }
        scratch.build_ops();
        let mut requests = std::mem::take(&mut scratch.req_out[0]);
        for k in 0..scratch.ticks.len() {
            let i = scratch.ticks[k] as usize;
            let Some(p) = propose_tick(
                seed,
                &self.online,
                t,
                i,
                &mut self.shuffles[i],
                &mut scratch.seeds,
                &mut scratch.pool,
            ) else {
                continue;
            };
            let target = p.target();
            let tgt = target.raw() as usize;
            if tgt < n && self.trace.is_online(tgt, t) {
                let (_, request) = p.into_request();
                requests.push(RequestMsg {
                    initiator: i as u32,
                    responder: tgt as u32,
                    request,
                });
            } else {
                p.recycle_into(&mut scratch.pool);
                scratch.timeouts.push((i as u32, target));
            }
        }
        drop(tp);
        // Phase 2 — commit: counting-bucket chains replace the
        // (responder, initiator) sort. Each responder's chain is already
        // ascending by initiator (requests were generated over the
        // sorted tick list), and cross-responder order is immaterial — a
        // request only touches the responder's own state.
        let tc = self.tracer.span(PH_COMMIT, 0);
        scratch.chain_by_responder(n, requests.len(), |idx| requests[idx].responder as usize);
        let mut replies = std::mem::take(&mut scratch.reply_out[0]);
        for k in 0..scratch.bucket_touched.len() {
            let r = scratch.bucket_touched[k] as usize;
            let mut idx = scratch.bucket_head[r];
            while idx != u32::MAX {
                let msg = &mut requests[idx as usize];
                let request = std::mem::replace(
                    &mut msg.request,
                    ShuffleMessage::Request {
                        entries: Vec::new(),
                    },
                );
                let initiator = msg.initiator;
                let reply = self.shuffles[r].handle_request_with(request, &mut scratch.pool);
                replies.push(ReplyMsg { initiator, reply });
                idx = scratch.bucket_next[idx as usize];
            }
            scratch.bucket_head[r] = u32::MAX;
            scratch.bucket_tail[r] = u32::MAX;
        }
        requests.clear();
        scratch.req_out[0] = requests;
        // Replies and timeouts: at most one per initiator, each touching
        // only the initiator's own state, so application order is
        // immaterial — no sort needed.
        for msg in replies.drain(..) {
            self.shuffles[msg.initiator as usize].handle_reply_with(msg.reply, &mut scratch.pool);
        }
        scratch.reply_out[0] = replies;
        for k in 0..scratch.timeouts.len() {
            let (i, target) = scratch.timeouts[k];
            self.shuffles[i as usize].handle_timeout_with(target, &mut scratch.pool);
        }
        scratch.timeouts.clear();
        drop(tc);
        // Phase 3 — finalize: discovery over the post-commit views, then
        // refresh (canonical intra-node order; cross-node order is
        // irrelevant, each node touches only its own lists). The ops
        // list was built in the propose span.
        let tf = self.tracer.span(PH_FINALIZE, 0);
        let memo;
        let fast = if self.config.finalize_fast {
            memo = SimMemo::build(&self.predicate);
            Some(FastCtx {
                memo: &memo,
                epoch: self.oracle.epoch(t),
            })
        } else {
            None
        };
        let ctx = MaintCtx {
            predicate: &self.predicate,
            oracle: &self.oracle,
            hashes: &self.hashes,
            shuffles: &self.shuffles,
            now: t,
            fast,
            pair_capacity: pair_cache_capacity(self.config.hash_budget, 1),
        };
        for k in 0..scratch.ops.len() {
            let ops = scratch.ops[k];
            ctx.finalize_node(ops, &mut self.memberships[ops.node as usize], scratch, 0, n);
        }
        drop(tf);
        self.fin_stats.merge(scratch.take_stats());
    }

    /// Shard-owned execution of one cohort: each shard's slice of the
    /// shuffle and membership state is split off as a disjoint `&mut`
    /// sub-slice (see [`ShardPartition::split_mut`]) and driven by the
    /// worker pool, one job per shard. Cross-shard traffic — shuffle
    /// requests to responders in other shards, and their replies — moves
    /// as per-(source → destination) message batches transposed on the
    /// driving thread at the phase barriers. Bit-identical to
    /// [`AvmemSim::run_batch_serial`] for every shard and thread count:
    /// propose randomness is keyed per node, request application is
    /// ordered per responder by initiator id, and finalize is canonical
    /// per node.
    #[allow(clippy::too_many_arguments)]
    fn run_batch_sharded(
        &mut self,
        t: SimTime,
        part: ShardPartition,
        batches: &[Vec<MaintEvent>],
        scratches: &mut [ShardScratch],
        req_in: &mut [Vec<RequestMsg>],
        reply_in: &mut [Vec<ReplyMsg>],
        threads: usize,
    ) {
        let seed = self.config.seed;
        let shards = part.shards();
        let n = part.len();
        let trace = &self.trace;
        let online = &self.online;
        let tracer = &self.tracer;
        let mut shuffles = std::mem::take(&mut self.shuffles);
        // Phase 1 — propose: per shard, collect the cohort's work lists,
        // run every online tick against the shard-owned shuffle slice,
        // and batch the resulting requests by the responder's shard.
        let tp = tracer.span(PH_PROPOSE, 0);
        {
            let slices = part.split_mut(&mut shuffles);
            let mut tasks: Vec<(usize, &mut [ShuffleNode], &mut ShardScratch, &[MaintEvent])> =
                slices
                    .into_iter()
                    .zip(scratches.iter_mut())
                    .zip(batches.iter())
                    .enumerate()
                    .map(|(s, ((slice, scratch), batch))| {
                        (part.range(s).start, slice, scratch, batch.as_slice())
                    })
                    .collect();
            par_each_mut(&mut tasks, threads, |s, (start, slice, scratch, batch)| {
                let _span = tracer.span(PH_PROPOSE, shard_lane(s));
                scratch.begin_cohort(shards);
                for &event in batch.iter() {
                    match event {
                        MaintEvent::Tick(i) if trace.is_online(i, t) => {
                            scratch.ticks.push(i as u32);
                        }
                        MaintEvent::Refresh(i) if trace.is_online(i, t) => {
                            scratch.refreshes.push(i as u32);
                        }
                        _ => {}
                    }
                }
                scratch.build_ops();
                for k in 0..scratch.ticks.len() {
                    let i = scratch.ticks[k] as usize;
                    let Some(p) = propose_tick(
                        seed,
                        online,
                        t,
                        i,
                        &mut slice[i - *start],
                        &mut scratch.seeds,
                        &mut scratch.pool,
                    ) else {
                        continue;
                    };
                    let target = p.target();
                    let tgt = target.raw() as usize;
                    if tgt < n && trace.is_online(tgt, t) {
                        let (_, request) = p.into_request();
                        scratch.req_out[part.owner(tgt)].push(RequestMsg {
                            initiator: i as u32,
                            responder: tgt as u32,
                            request,
                        });
                    } else {
                        p.recycle_into(&mut scratch.pool);
                        scratch.timeouts.push((i as u32, target));
                    }
                }
            });
        }
        drop(tp);
        let tc = tracer.span(PH_COMMIT, 0);
        // Barrier — transpose the request batches: shard `s`'s outbox for
        // destination `d` is appended to `d`'s inbox. Source shards are
        // walked in ascending order, and each outbox is itself ascending
        // by initiator (built over the sorted tick list) over the shard's
        // contiguous id range — so every inbox comes out globally
        // ascending by initiator, the order the commit chains rely on.
        for scratch in scratches.iter_mut() {
            for (d, out) in scratch.req_out.iter_mut().enumerate() {
                if let Some(m) = &self.metrics {
                    m.exchange_req_batch.record(out.len() as u64);
                    m.exchange_requests.add(out.len() as u64);
                }
                req_in[d].append(out);
            }
        }
        // Phase 2a — request application: each responder shard chains its
        // inbox by responder (counting buckets — no sort; each chain is
        // ascending by initiator, the canonical commit order) and applies
        // chain by chain, batching replies by the initiator's shard.
        {
            let slices = part.split_mut(&mut shuffles);
            let mut tasks: Vec<(
                usize,
                &mut [ShuffleNode],
                &mut ShardScratch,
                &mut Vec<RequestMsg>,
            )> = slices
                .into_iter()
                .zip(scratches.iter_mut())
                .zip(req_in.iter_mut())
                .enumerate()
                .map(|(s, ((slice, scratch), inbox))| (part.range(s).start, slice, scratch, inbox))
                .collect();
            par_each_mut(&mut tasks, threads, |_, (start, slice, scratch, inbox)| {
                let base = *start;
                scratch.chain_by_responder(slice.len(), inbox.len(), |idx| {
                    inbox[idx].responder as usize - base
                });
                for k in 0..scratch.bucket_touched.len() {
                    let r = scratch.bucket_touched[k] as usize;
                    let mut idx = scratch.bucket_head[r];
                    while idx != u32::MAX {
                        let msg = &mut inbox[idx as usize];
                        let request = std::mem::replace(
                            &mut msg.request,
                            ShuffleMessage::Request {
                                entries: Vec::new(),
                            },
                        );
                        let initiator = msg.initiator;
                        let reply = slice[r].handle_request_with(request, &mut scratch.pool);
                        scratch.reply_out[part.owner(initiator as usize)].push(ReplyMsg {
                            initiator,
                            reply,
                        });
                        idx = scratch.bucket_next[idx as usize];
                    }
                    scratch.bucket_head[r] = u32::MAX;
                    scratch.bucket_tail[r] = u32::MAX;
                }
                inbox.clear();
            });
        }
        // Barrier — transpose the reply batches back to their initiators.
        for scratch in scratches.iter_mut() {
            for (d, out) in scratch.reply_out.iter_mut().enumerate() {
                if let Some(m) = &self.metrics {
                    m.exchange_reply_batch.record(out.len() as u64);
                    m.exchange_replies.add(out.len() as u64);
                }
                reply_in[d].append(out);
            }
        }
        // Phase 2b — reply/timeout application: at most one per
        // initiator, each touching only the initiator's own state, so
        // application order is immaterial — the inbox drains as-is.
        {
            let slices = part.split_mut(&mut shuffles);
            let mut tasks: Vec<(
                usize,
                &mut [ShuffleNode],
                &mut ShardScratch,
                &mut Vec<ReplyMsg>,
            )> = slices
                .into_iter()
                .zip(scratches.iter_mut())
                .zip(reply_in.iter_mut())
                .enumerate()
                .map(|(s, ((slice, scratch), inbox))| (part.range(s).start, slice, scratch, inbox))
                .collect();
            par_each_mut(&mut tasks, threads, |_, (start, slice, scratch, inbox)| {
                for msg in inbox.drain(..) {
                    slice[msg.initiator as usize - *start]
                        .handle_reply_with(msg.reply, &mut scratch.pool);
                }
                for k in 0..scratch.timeouts.len() {
                    let (i, target) = scratch.timeouts[k];
                    slice[i as usize - *start].handle_timeout_with(target, &mut scratch.pool);
                }
                scratch.timeouts.clear();
            });
        }
        self.shuffles = shuffles;
        drop(tc);
        // Phase 3 — finalize: each shard walks its per-node ops against
        // its membership slice, reading the (now frozen) post-commit
        // shuffle views.
        let tf = tracer.span(PH_FINALIZE, 0);
        let mut memberships = std::mem::take(&mut self.memberships);
        {
            let memo;
            let fast = if self.config.finalize_fast {
                memo = SimMemo::build(&self.predicate);
                Some(FastCtx {
                    memo: &memo,
                    epoch: self.oracle.epoch(t),
                })
            } else {
                None
            };
            let ctx = MaintCtx {
                predicate: &self.predicate,
                oracle: &self.oracle,
                hashes: &self.hashes,
                shuffles: &self.shuffles,
                now: t,
                fast,
                pair_capacity: pair_cache_capacity(self.config.hash_budget, shards),
            };
            let slices = part.split_mut(&mut memberships);
            let mut tasks: Vec<(usize, usize, &mut [Membership], &mut ShardScratch)> = slices
                .into_iter()
                .zip(scratches.iter_mut())
                .enumerate()
                .map(|(s, (slice, scratch))| {
                    let range = part.range(s);
                    (range.start, range.len(), slice, scratch)
                })
                .collect();
            let ctx = &ctx;
            par_each_mut(&mut tasks, threads, |s, (start, len, slice, scratch)| {
                let _span = tracer.span(PH_FINALIZE, shard_lane(s));
                for k in 0..scratch.ops.len() {
                    let ops = scratch.ops[k];
                    ctx.finalize_node(
                        ops,
                        &mut slice[ops.node as usize - *start],
                        scratch,
                        *start,
                        *len,
                    );
                }
            });
        }
        self.memberships = memberships;
        for scratch in scratches.iter_mut() {
            self.fin_stats.merge(scratch.take_stats());
        }
        drop(tf);
    }

    /// Captures the current overlay state for analysis.
    pub fn snapshot(&self) -> OverlaySnapshot {
        let n = self.trace.num_nodes();
        let nodes = (0..n)
            .map(|i| {
                let estimated = self
                    .estimated_availability(i, i)
                    .unwrap_or_else(|| self.trace.long_term_availability(i));
                NodeSnapshot {
                    id: NodeId::new(i as u64),
                    online: self.trace.is_online(i, self.now),
                    estimated_availability: estimated,
                    true_availability: self.trace.long_term_availability(i),
                    hs: self.memberships[i].hs().map(|nb| nb.id).collect(),
                    vs: self.memberships[i].vs().map(|nb| nb.id).collect(),
                }
            })
            .collect();
        OverlaySnapshot::new(nodes, self.predicate.epsilon())
    }

    /// Streaming overlay health: the numbers a health sample needs,
    /// without materializing a snapshot.
    ///
    /// [`snapshot`](Self::snapshot) clones every node's sliver lists and
    /// queries the oracle per node — fine for analysis, but at 10⁵–10⁶
    /// hosts a periodic health probe spends more memory and time on the
    /// clone than the whole maintenance slice it interrupts. This path
    /// walks the live membership state once: online count from the
    /// trace, mean degree with the same accumulation order as
    /// [`OverlaySnapshot::mean_degree`] (ascending node index, so the
    /// two agree bit for bit), and the largest weakly-connected
    /// component over both-endpoint-online sliver edges via union-find
    /// (the same component structure the snapshot's BFS finds).
    pub fn health_stats(&self) -> HealthStats {
        let n = self.trace.num_nodes();
        let mut online = vec![false; n];
        let mut online_count = 0usize;
        for (i, flag) in online.iter_mut().enumerate() {
            if self.trace.is_online(i, self.now) {
                *flag = true;
                online_count += 1;
            }
        }
        if online_count == 0 {
            return HealthStats {
                online: 0,
                mean_degree: 0.0,
                largest_component: 0.0,
            };
        }
        fn find(parent: &mut [u32], mut x: u32) -> u32 {
            while parent[x as usize] != x {
                // Path halving.
                parent[x as usize] = parent[parent[x as usize] as usize];
                x = parent[x as usize];
            }
            x
        }
        let mut parent: Vec<u32> = (0..n as u32).collect();
        let mut degree_sum = 0.0f64;
        for i in 0..n {
            if !online[i] {
                continue;
            }
            let membership = &self.memberships[i];
            degree_sum += membership.len() as f64;
            for neighbor_id in membership.neighbor_ids(SliverScope::Both) {
                let j = neighbor_id.raw() as usize;
                if online[j] {
                    let (a, b) = (find(&mut parent, i as u32), find(&mut parent, j as u32));
                    if a != b {
                        parent[a as usize] = b;
                    }
                }
            }
        }
        let mut component_size = vec![0u32; n];
        let mut best = 0u32;
        for (i, &up) in online.iter().enumerate() {
            if up {
                let root = find(&mut parent, i as u32) as usize;
                component_size[root] += 1;
                best = best.max(component_size[root]);
            }
        }
        HealthStats {
            online: online_count,
            mean_degree: degree_sum / online_count as f64,
            largest_component: f64::from(best) / online_count as f64,
        }
    }

    /// Picks a uniformly random *online* node whose true availability
    /// lies in `band`, or `None` if no such node is online.
    ///
    /// Runs off the per-slot [`OnlineIndex`] with a count-then-select
    /// pass, so repeated initiator draws (operation experiments fire
    /// thousands per snapshot) materialize no candidate `Vec`.
    pub fn random_online_initiator(&mut self, band: InitiatorBand) -> Option<NodeId> {
        self.online.refresh(&self.trace, self.now);
        let in_band =
            |i: &&u32| band.contains(self.trace.long_term_availability(**i as usize));
        let eligible = self.online.online().iter().filter(in_band).count();
        if eligible == 0 {
            return None;
        }
        let pick = self.rng.index(eligible);
        let node = self
            .online
            .online()
            .iter()
            .filter(in_band)
            .nth(pick)
            .copied()
            .expect("pick < eligible count");
        Some(NodeId::new(node as u64))
    }

    /// A node's coarse (shuffle) view — the discovery substrate's state,
    /// exposed for analysis and the engine-equivalence tests.
    ///
    /// # Panics
    ///
    /// Panics if `id` is outside the population.
    pub fn shuffle_view(&self, id: NodeId) -> &View {
        self.shuffles[self.index(id)].view()
    }

    /// All online nodes whose true availability lies in `target`.
    pub fn online_nodes_in(&self, target: AvailabilityTarget) -> Vec<NodeId> {
        self.trace
            .online_at(self.now)
            .into_iter()
            .filter(|&i| target.contains(self.trace.long_term_availability(i)))
            .map(|i| NodeId::new(i as u64))
            .collect()
    }

    /// Runs one anycast from `initiator` at the current time.
    pub fn anycast(
        &mut self,
        initiator: NodeId,
        target: AvailabilityTarget,
        config: AnycastConfig,
    ) -> AnycastOutcome {
        let world = WorldView {
            trace: &self.trace,
            oracle: &self.oracle,
            memberships: &self.memberships,
            now: self.now,
        };
        run_anycast(&world, &mut self.net, &mut self.rng, initiator, target, config)
    }

    /// Runs one multicast from `initiator` at the current time.
    pub fn multicast(
        &mut self,
        initiator: NodeId,
        target: AvailabilityTarget,
        config: MulticastConfig,
    ) -> MulticastOutcome {
        let world = WorldView {
            trace: &self.trace,
            oracle: &self.oracle,
            memberships: &self.memberships,
            now: self.now,
        };
        run_multicast(&world, &mut self.net, &mut self.rng, initiator, target, config)
    }

    /// A borrowed [`OverlayWorld`] view of the current state, for custom
    /// measurements.
    pub fn world(&self) -> impl OverlayWorld + '_ {
        WorldView {
            trace: &self.trace,
            oracle: &self.oracle,
            memberships: &self.memberships,
            now: self.now,
        }
    }
}

/// Borrowed world view over the simulation state.
struct WorldView<'a> {
    trace: &'a ChurnTrace,
    oracle: &'a SimOracle,
    memberships: &'a [Membership],
    now: SimTime,
}

impl OverlayWorld for WorldView<'_> {
    fn node_ids(&self) -> Vec<NodeId> {
        self.trace.node_ids().collect()
    }

    fn is_online(&self, id: NodeId) -> bool {
        self.trace.is_online(id.raw() as usize, self.now)
    }

    fn believed_availability(&self, id: NodeId) -> Availability {
        self.oracle
            .estimate(id, id, self.now)
            .unwrap_or_else(|| self.trace.long_term_availability(id.raw() as usize))
    }

    fn true_availability(&self, id: NodeId) -> Availability {
        self.trace.long_term_availability(id.raw() as usize)
    }

    fn neighbors(&self, id: NodeId, scope: SliverScope) -> Vec<Neighbor> {
        self.memberships[id.raw() as usize].neighbors(scope).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avmem_trace::OvernetModel;

    fn small_sim(seed: u64) -> AvmemSim {
        let trace = OvernetModel::default().hosts(120).days(1).generate(3);
        AvmemSim::new(trace, SimConfig::paper_default(seed))
    }

    #[test]
    fn converged_warm_up_builds_lists() {
        let mut sim = small_sim(1);
        sim.warm_up(SimDuration::from_hours(24));
        let snapshot = sim.snapshot();
        assert!(snapshot.mean_degree() > 1.0, "overlay should have edges");
    }

    #[test]
    fn warm_up_advances_clock() {
        let mut sim = small_sim(1);
        sim.warm_up(SimDuration::from_hours(2));
        assert_eq!(sim.now(), SimTime::ZERO + SimDuration::from_hours(2));
    }

    #[test]
    fn health_stats_matches_the_snapshot_metrics() {
        use crate::membership::SliverScope;
        // The streaming health path must agree with the snapshot-based
        // metrics exactly — same mean-degree accumulation order, same
        // component structure — at several points of a churning run.
        let mut sim = small_sim(4);
        for _ in 0..3 {
            sim.warm_up(SimDuration::from_hours(6));
            let stats = sim.health_stats();
            let snapshot = sim.snapshot();
            assert_eq!(stats.online, snapshot.online_count());
            assert_eq!(stats.mean_degree, snapshot.mean_degree());
            assert_eq!(
                stats.largest_component,
                snapshot.largest_component_fraction(SliverScope::Both)
            );
        }
        assert!(sim.health_stats().mean_degree > 1.0, "vacuous overlay");
    }

    #[test]
    fn same_seed_same_overlay() {
        let mut a = small_sim(9);
        let mut b = small_sim(9);
        a.warm_up(SimDuration::from_hours(24));
        b.warm_up(SimDuration::from_hours(24));
        assert_eq!(a.snapshot(), b.snapshot());
    }

    #[test]
    fn event_driven_approaches_converged() {
        let trace = OvernetModel::default().hosts(80).days(1).generate(5);
        let mut converged = AvmemSim::new(trace.clone(), SimConfig::paper_default(2));
        converged.warm_up(SimDuration::from_hours(12));

        let mut config = SimConfig::paper_default(2);
        config.maintenance = MaintenanceMode::paper_event_driven();
        let mut event_driven = AvmemSim::new(trace, config);
        event_driven.warm_up(SimDuration::from_hours(12));

        // Event-driven discovery should have found a sizeable share of the
        // converged overlay's edges for online nodes.
        let conv_snapshot = converged.snapshot();
        let ed_snapshot = event_driven.snapshot();
        let conv_degree = conv_snapshot.mean_degree();
        let ed_degree = ed_snapshot.mean_degree();
        assert!(
            ed_degree > conv_degree * 0.3,
            "event-driven degree {ed_degree} too far below converged {conv_degree}"
        );
    }

    #[test]
    fn event_driven_lists_satisfy_predicate() {
        let trace = OvernetModel::default().hosts(60).days(1).generate(7);
        let mut config = SimConfig::paper_default(3);
        config.maintenance = MaintenanceMode::paper_event_driven();
        let mut sim = AvmemSim::new(trace, config);
        sim.warm_up(SimDuration::from_hours(6));
        // Every listed neighbor must satisfy the predicate under current
        // (exact) availabilities — modulo entries not yet refreshed; with
        // the exact oracle there is no divergence at all.
        for i in 0..sim.trace().num_nodes() {
            let own = NodeInfo::new(
                NodeId::new(i as u64),
                sim.trace().long_term_availability(i),
            );
            for nb in sim.memberships[i].neighbors(SliverScope::Both) {
                let info = NodeInfo::new(nb.id, nb.cached_availability);
                assert!(
                    sim.predicate.member(own, info),
                    "listed neighbor violates predicate"
                );
            }
        }
    }

    #[test]
    fn chopped_event_driven_warm_up_equals_one_big_advance() {
        // The persistent schedule makes warm_up(x); warm_up(y) identical
        // to warm_up(x + y): the periodic protocols keep their phase
        // across call boundaries instead of re-staggering.
        let trace = OvernetModel::default().hosts(90).days(1).generate(19);
        let mut config = SimConfig::paper_default(6);
        config.maintenance = MaintenanceMode::paper_event_driven();
        let mut whole = AvmemSim::new(trace.clone(), config);
        whole.warm_up(SimDuration::from_hours(4));
        let mut chopped = AvmemSim::new(trace, config);
        for _ in 0..16 {
            chopped.warm_up(SimDuration::from_mins(15));
        }
        assert_eq!(whole.now(), chopped.now());
        assert_eq!(whole.snapshot(), chopped.snapshot());
        for i in 0..whole.trace().num_nodes() {
            let id = NodeId::new(i as u64);
            assert_eq!(whole.shuffle_view(id), chopped.shuffle_view(id));
        }
    }

    #[test]
    fn advance_to_matches_warm_up_in_event_driven_mode() {
        let trace = OvernetModel::default().hosts(70).days(1).generate(23);
        let mut config = SimConfig::paper_default(8);
        config.maintenance = MaintenanceMode::paper_event_driven();
        let mut by_duration = AvmemSim::new(trace.clone(), config);
        by_duration.warm_up(SimDuration::from_hours(2));
        let mut by_instant = AvmemSim::new(trace, config);
        by_instant.advance_to(SimTime::ZERO + SimDuration::from_hours(1));
        assert!(by_instant.next_maintenance_at().is_some());
        by_instant.advance_to(SimTime::ZERO + SimDuration::from_hours(2));
        // Backwards/no-op advances change nothing.
        by_instant.advance_to(SimTime::ZERO);
        assert_eq!(by_duration.now(), by_instant.now());
        assert_eq!(by_duration.snapshot(), by_instant.snapshot());
    }

    #[test]
    fn advance_to_in_converged_mode_moves_clock_without_rebuild() {
        let mut sim = small_sim(17);
        sim.warm_up(SimDuration::from_hours(1));
        let before = sim.snapshot();
        assert!(sim.next_maintenance_at().is_none());
        sim.advance_to(SimTime::ZERO + SimDuration::from_hours(3));
        assert_eq!(sim.now(), SimTime::ZERO + SimDuration::from_hours(3));
        // Lists untouched: only clock/oracle/online advanced (the online
        // flags in a fresh snapshot may differ, but memberships may not).
        let after = sim.snapshot();
        for (a, b) in before.nodes().iter().zip(after.nodes()) {
            assert_eq!(a.hs, b.hs);
            assert_eq!(a.vs, b.vs);
        }
    }

    #[test]
    fn anycast_high_target_from_mid_usually_delivers() {
        let mut sim = small_sim(11);
        sim.warm_up(SimDuration::from_hours(24));
        let mut delivered = 0;
        let mut sent = 0;
        for _ in 0..20 {
            let Some(initiator) = sim.random_online_initiator(InitiatorBand::Mid) else {
                continue;
            };
            sent += 1;
            let outcome = sim.anycast(
                initiator,
                AvailabilityTarget::range(0.85, 0.95),
                AnycastConfig::paper_default(),
            );
            if outcome.is_delivered() {
                delivered += 1;
            }
        }
        assert!(sent > 0);
        assert!(
            delivered * 2 >= sent,
            "only {delivered}/{sent} delivered"
        );
    }

    #[test]
    fn multicast_reaches_most_of_range() {
        let mut sim = small_sim(13);
        sim.warm_up(SimDuration::from_hours(24));
        let target = AvailabilityTarget::threshold(0.7);
        let Some(initiator) = sim.random_online_initiator(InitiatorBand::High) else {
            panic!("no high-availability initiator online");
        };
        let outcome = sim.multicast(initiator, target, MulticastConfig::paper_default());
        let world = sim.world();
        let reliability = outcome.reliability(&world, target);
        assert!(
            reliability.unwrap_or(0.0) > 0.5,
            "reliability {reliability:?} too low"
        );
    }

    #[test]
    fn random_predicate_builds_flat_overlay() {
        let trace = OvernetModel::default().hosts(100).days(1).generate(5);
        let mut config = SimConfig::paper_default(4);
        config.predicate = PredicateChoice::Random {
            expected_degree: 12.0,
        };
        let mut sim = AvmemSim::new(trace, config);
        sim.warm_up(SimDuration::from_hours(24));
        let snapshot = sim.snapshot();
        let degree = snapshot.mean_degree();
        assert!(
            (2.0..30.0).contains(&degree),
            "random overlay degree {degree} out of expected range"
        );
    }

    #[test]
    fn initiator_band_respects_bounds() {
        let mut sim = small_sim(15);
        sim.warm_up(SimDuration::from_hours(1));
        for band in [InitiatorBand::Low, InitiatorBand::Mid, InitiatorBand::High] {
            if let Some(node) = sim.random_online_initiator(band) {
                let av = sim.trace().long_term_availability(node.raw() as usize);
                assert!(band.contains(av), "{band:?} initiator has availability {av}");
            }
        }
    }

    #[test]
    fn world_view_is_consistent_with_trace() {
        let mut sim = small_sim(21);
        sim.warm_up(SimDuration::from_hours(2));
        let now = sim.now();
        let online_from_trace: Vec<usize> = sim.trace().online_at(now);
        let world = sim.world();
        for i in 0..sim.trace().num_nodes() {
            let id = NodeId::new(i as u64);
            assert_eq!(world.is_online(id), online_from_trace.contains(&i));
            assert_eq!(
                world.true_availability(id),
                sim.trace().long_term_availability(i)
            );
            // Exact oracle: belief equals truth.
            assert_eq!(
                world.believed_availability(id),
                sim.trace().long_term_availability(i)
            );
        }
    }

    #[test]
    fn online_nodes_in_filters_by_truth() {
        let mut sim = small_sim(22);
        sim.warm_up(SimDuration::from_hours(2));
        let target = AvailabilityTarget::threshold(0.7);
        for id in sim.online_nodes_in(target) {
            let i = id.raw() as usize;
            assert!(sim.trace().is_online(i, sim.now()));
            assert!(target.contains(sim.trace().long_term_availability(i)));
        }
    }

    #[test]
    fn membership_accessor_matches_snapshot() {
        let mut sim = small_sim(23);
        sim.warm_up(SimDuration::from_hours(4));
        let snapshot = sim.snapshot();
        for node in snapshot.nodes() {
            let membership = sim.membership(node.id);
            assert_eq!(membership.hs_len(), node.hs.len());
            assert_eq!(membership.vs_len(), node.vs.len());
        }
    }

    #[test]
    fn phase_timings_accumulate_in_event_driven_mode() {
        let trace = OvernetModel::default().hosts(60).days(1).generate(11);
        let mut config = SimConfig::paper_default(5);
        config.maintenance = MaintenanceMode::paper_event_driven();
        let mut sim = AvmemSim::new(trace, config);
        assert_eq!(sim.phase_timings(), PhaseTimings::default());
        sim.warm_up(SimDuration::from_hours(2));
        let timings = sim.phase_timings();
        assert!(timings.cohorts > 0, "no cohorts processed");
        assert!(
            timings.propose + timings.commit + timings.finalize > Duration::ZERO,
            "no maintenance time recorded"
        );
    }

    #[test]
    fn finalize_fast_path_matches_reference_and_counts() {
        // The integration suite pins the full fast-vs-slow matrix; this
        // in-crate smoke checks full membership state (timestamps and
        // cached availabilities included, which snapshots don't carry)
        // and that the counters actually move.
        let trace = OvernetModel::default().hosts(80).days(1).generate(31);
        let mut fast_cfg = SimConfig::paper_default(14);
        fast_cfg.maintenance = MaintenanceMode::paper_event_driven();
        fast_cfg.engine = MaintenanceEngine::Serial;
        let mut slow_cfg = fast_cfg;
        slow_cfg.finalize_fast = false;
        let mut fast = AvmemSim::new(trace.clone(), fast_cfg);
        let mut slow = AvmemSim::new(trace, slow_cfg);
        fast.warm_up(SimDuration::from_hours(3));
        slow.warm_up(SimDuration::from_hours(3));
        for i in 0..fast.trace().num_nodes() {
            let id = NodeId::new(i as u64);
            assert_eq!(fast.membership(id), slow.membership(id), "node {id}");
        }
        let stats = fast.finalize_stats();
        assert!(stats.memo_hits + stats.memo_misses > 0, "fast path never ran");
        assert!(
            stats.refresh_skipped > 0,
            "constant-epoch oracle must skip repeat refreshes"
        );
        assert!(
            stats.discover_pruned > 0,
            "constant-epoch oracle must prune repeat discovery candidates"
        );
        assert!(stats.batched_estimates > 0, "no batched estimates");
        assert_eq!(slow.finalize_stats(), FinalizeStats::default());
    }

    #[test]
    fn sharded_engine_matches_serial_in_unit_scale() {
        // The integration suite pins the full matrix; this is the fast
        // in-crate smoke over one awkward shard count.
        let trace = OvernetModel::default().hosts(75).days(1).generate(29);
        let mut serial_cfg = SimConfig::paper_default(12);
        serial_cfg.maintenance = MaintenanceMode::paper_event_driven();
        serial_cfg.engine = MaintenanceEngine::Serial;
        let mut serial = AvmemSim::new(trace.clone(), serial_cfg);
        serial.warm_up(SimDuration::from_hours(2));

        let mut sharded_cfg = serial_cfg;
        sharded_cfg.engine = MaintenanceEngine::Sharded {
            shards: Some(3),
            threads: Some(2),
        };
        let mut sharded = AvmemSim::new(trace, sharded_cfg);
        sharded.warm_up(SimDuration::from_hours(2));

        assert_eq!(serial.snapshot(), sharded.snapshot());
        for i in 0..serial.trace().num_nodes() {
            let id = NodeId::new(i as u64);
            assert_eq!(serial.shuffle_view(id), sharded.shuffle_view(id));
        }
    }
}
