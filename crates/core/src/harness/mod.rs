//! The full-system simulation harness.
//!
//! [`AvmemSim`] binds every substrate together the way the paper's
//! evaluation does (§4): a churn trace drives node up/down state; an
//! availability oracle (exact, noisy, or full AVMON) answers availability
//! queries; the membership predicate builds each node's HS/VS lists —
//! either directly ("converged", the post-warm-up state the paper
//! snapshots) or by actually running the shuffle + discovery + refresh
//! sub-protocols through the event engine; and the management operations
//! execute over the resulting overlay with per-hop latencies.
//!
//! # Examples
//!
//! ```
//! use avmem::harness::{AvmemSim, SimConfig};
//! use avmem::ops::{AnycastConfig, AvailabilityTarget};
//! use avmem_sim::SimDuration;
//! use avmem_trace::OvernetModel;
//!
//! let trace = OvernetModel::default().hosts(120).days(1).generate(7);
//! let mut sim = AvmemSim::new(trace, SimConfig::paper_default(1));
//! sim.warm_up(SimDuration::from_hours(24));
//!
//! let initiator = sim
//!     .random_online_initiator(avmem::harness::InitiatorBand::Mid)
//!     .expect("some MID node online");
//! let outcome = sim.anycast(
//!     initiator,
//!     AvailabilityTarget::range(0.85, 0.95),
//!     AnycastConfig::paper_default(),
//! );
//! println!("delivered: {}", outcome.is_delivered());
//! ```

pub mod attack;
pub mod config;
pub mod hashes;
pub mod index;
pub mod oracle;

pub use attack::AttackSeries;
pub use config::{
    MaintenanceEngine, MaintenanceMode, OracleChoice, PredicateChoice, SimConfig,
};
pub use hashes::{PairHashes, DEFAULT_HASH_BUDGET};
pub use index::CandidateIndex;
pub use oracle::SimOracle;

use std::sync::Arc;

use avmem_avmon::AvailabilityOracle;
use avmem_shuffle::{ShuffleConfig, ShuffleNode, ShuffleProposal, View};
use avmem_sim::{Engine, Network, SimDuration, SimTime};
use avmem_trace::{AvailabilityPdf, ChurnTrace, OnlineIndex};
use avmem_util::parallel::{default_threads, gather_mut, par_chunks_mut};
use avmem_util::{Availability, NodeId, Rng, SplitMix64, Xoshiro256};
use serde::{Deserialize, Serialize};

use crate::graph::{NodeSnapshot, OverlaySnapshot};
use crate::membership::{Membership, Neighbor, SliverScope};
use crate::ops::anycast::{run_anycast, AnycastConfig, AnycastOutcome};
use crate::ops::multicast::{run_multicast, MulticastConfig, MulticastOutcome};
use crate::ops::target::AvailabilityTarget;
use crate::ops::world::OverlayWorld;
use crate::predicate::{
    AvmemPredicate, MembershipPredicate, NodeInfo, RandomPredicate, Sliver, SourceThresholds,
    ThresholdMemo,
};

/// The predicate actually in force inside a simulation.
#[derive(Debug, Clone)]
pub enum SimPredicate {
    /// AVMEM slivers.
    Avmem(AvmemPredicate),
    /// Consistent-random baseline.
    Random(RandomPredicate),
}

impl MembershipPredicate for SimPredicate {
    fn threshold(&self, x: Availability, y: Availability) -> f64 {
        match self {
            SimPredicate::Avmem(p) => p.threshold(x, y),
            SimPredicate::Random(p) => p.threshold(x, y),
        }
    }

    fn epsilon(&self) -> f64 {
        match self {
            SimPredicate::Avmem(p) => p.epsilon(),
            SimPredicate::Random(p) => p.epsilon(),
        }
    }
}

/// Per-rebuild memo over [`SimPredicate`]: AVMEM hoists its PDF tables
/// (see [`ThresholdMemo`]); the random baseline is flat already.
enum SimMemo<'p> {
    Avmem(ThresholdMemo<'p>),
    Random { p: f64, epsilon: f64 },
}

impl<'p> SimMemo<'p> {
    fn build(predicate: &'p SimPredicate) -> Self {
        match predicate {
            SimPredicate::Avmem(pred) => SimMemo::Avmem(pred.rebuild_memo()),
            SimPredicate::Random(pred) => SimMemo::Random {
                p: pred.p(),
                epsilon: pred.epsilon(),
            },
        }
    }

    fn source(&self, x: Availability) -> SimSource<'_> {
        match self {
            SimMemo::Avmem(memo) => SimSource::Avmem(memo.source(x)),
            SimMemo::Random { p, epsilon } => SimSource::Random {
                p: *p,
                epsilon: *epsilon,
                x,
            },
        }
    }

    /// Per-candidate vertical thresholds aligned with `index` positions,
    /// when the vertical rule is source-independent (always for the
    /// random baseline; rules I.A/I.B for AVMEM). Computed once per
    /// rebuild so the VS hot loop is one load and one compare.
    fn vertical_table(&self, index: &CandidateIndex) -> Option<Vec<f64>> {
        match self {
            SimMemo::Avmem(memo) => {
                memo.source_independent_vertical(index.entries().iter().map(|&(v, _)| {
                    Availability::saturating(v)
                }))
            }
            SimMemo::Random { p, .. } => Some(vec![*p; index.len()]),
        }
    }
}

/// One source node's memoized thresholds; evaluation is bit-identical to
/// [`MembershipPredicate::classify_hashed`] of the simulation predicate.
enum SimSource<'m> {
    Avmem(SourceThresholds<'m>),
    Random { p: f64, epsilon: f64, x: Availability },
}

impl SimSource<'_> {
    fn epsilon(&self) -> f64 {
        match self {
            SimSource::Avmem(s) => s.epsilon(),
            SimSource::Random { epsilon, .. } => *epsilon,
        }
    }

    /// Threshold for in-band candidates (constant per source node).
    fn horizontal(&self) -> f64 {
        match self {
            SimSource::Avmem(s) => s.horizontal(),
            SimSource::Random { p, .. } => *p,
        }
    }

    /// Threshold for an out-of-band candidate.
    fn vertical(&self, y: Availability) -> f64 {
        match self {
            SimSource::Avmem(s) => s.vertical(y),
            SimSource::Random { p, .. } => *p,
        }
    }

    /// Eq. 1 with a caller-supplied hash; callers skip `y == x`.
    fn classify_hashed(&self, y: Availability, hash: f64) -> Option<Sliver> {
        match self {
            SimSource::Avmem(s) => s.classify_hashed(y, hash),
            SimSource::Random { p, epsilon, x } => (hash <= *p).then(|| {
                if x.distance(y) < *epsilon {
                    Sliver::Horizontal
                } else {
                    Sliver::Vertical
                }
            }),
        }
    }
}

/// Per-worker scratch for the converged rebuild: reused across all nodes
/// a worker processes, so the hot loop allocates nothing per node.
#[derive(Default)]
struct RebuildScratch {
    /// Pair-hash row (used only when hashes are in direct mode).
    row: Vec<f64>,
    /// Accepted horizontal candidates awaiting the decorrelation shuffle.
    hs: Vec<(usize, Availability)>,
    /// Accepted vertical candidates awaiting the decorrelation shuffle.
    vs: Vec<(usize, Availability)>,
}

/// Initiator selection bands used throughout §4.2: LOW ∈ [0, ⅓),
/// MID ∈ [⅓, ⅔), HIGH ∈ [⅔, 1].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InitiatorBand {
    /// True availability in `[0, 1/3)`.
    Low,
    /// True availability in `[1/3, 2/3)`.
    Mid,
    /// True availability in `[2/3, 1]`.
    High,
}

impl InitiatorBand {
    /// The availability interval of the band.
    pub fn bounds(self) -> (f64, f64) {
        match self {
            InitiatorBand::Low => (0.0, 1.0 / 3.0),
            InitiatorBand::Mid => (1.0 / 3.0, 2.0 / 3.0),
            InitiatorBand::High => (2.0 / 3.0, 1.0 + f64::EPSILON),
        }
    }

    /// Whether an availability falls inside the band.
    pub fn contains(self, av: Availability) -> bool {
        let (lo, hi) = self.bounds();
        av.value() >= lo && av.value() < hi
    }
}

/// Internal maintenance events (event-driven mode).
#[derive(Debug, Clone, Copy)]
enum MaintEvent {
    /// Per-period shuffle + discovery at node `i`.
    Tick(usize),
    /// Periodic refresh at node `i`.
    Refresh(usize),
}

/// Seeds handed to a node bootstrapping an empty coarse view (stands in
/// for a bootstrap service answering with a few live peers).
const BOOTSTRAP_SEEDS: usize = 3;

/// Stagger lattice: maintenance offsets are drawn on a grid of this many
/// cohorts per period, so nodes stay unsynchronized (no thundering herd)
/// while same-timestamp cohorts are large enough — `N / 16` nodes — for
/// the batch phases to spread across worker threads.
const STAGGER_COHORTS: u64 = 16;

/// Purpose tags separating the counter-keyed RNG streams of event-driven
/// maintenance. Every stream is `SplitMix64::keyed(&[run_seed, TAG,
/// node, epoch])`: determinism is a property of the key, never of which
/// thread or in which order the stream is drawn.
const STREAM_STAGGER_TICK: u64 = 1;
const STREAM_STAGGER_REFRESH: u64 = 2;
const STREAM_SHUFFLE: u64 = 3;
const STREAM_BOOTSTRAP: u64 = 4;

/// The discovery/refresh work one node performs in the finalize phase of
/// a batch, in intra-batch seq order (a node has at most one tick and
/// one refresh per timestamp).
#[derive(Debug, Clone, Copy)]
struct NodeOps {
    node: u32,
    first: MaintKind,
    second: Option<MaintKind>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MaintKind {
    /// Discovery over the node's (post-commit) coarse view.
    Discover,
    /// Refresh of the node's membership lists.
    Refresh,
}

/// One timestamp cohort decomposed into per-phase work lists. The plan
/// (one per maintenance run) is reused across batches, so these lists
/// stop allocating once they reach cohort size; only the phase slot
/// vectors — which hold per-batch `&mut` borrows — are rebuilt per
/// cohort.
#[derive(Debug, Default)]
struct BatchPlan {
    /// Online ticking nodes in batch (seq) order — the commit order.
    ticks: Vec<(u32, u32)>,
    /// The same ticks sorted by node — the gather/proposal order.
    ticks_sorted: Vec<(u32, u32)>,
    /// `ticks_sorted`'s node indices, as [`gather_mut`] wants them.
    tick_nodes: Vec<usize>,
    /// Online refreshing nodes sorted by node (merge scratch).
    refreshes_sorted: Vec<(u32, u32)>,
    /// Per-node finalize ops, ascending by node.
    finalize: Vec<NodeOps>,
    /// `finalize`'s node indices, as [`gather_mut`] wants them.
    finalize_nodes: Vec<usize>,
}

impl BatchPlan {
    /// Decomposes `batch` (one engine cohort, seq order) given the
    /// per-node online predicate. Offline nodes do no maintenance work
    /// (they are still rescheduled by the driver).
    fn build(&mut self, batch: &[MaintEvent], mut online: impl FnMut(usize) -> bool) {
        self.ticks.clear();
        self.ticks_sorted.clear();
        self.tick_nodes.clear();
        self.refreshes_sorted.clear();
        self.finalize.clear();
        self.finalize_nodes.clear();
        for (pos, &event) in batch.iter().enumerate() {
            match event {
                MaintEvent::Tick(i) if online(i) => {
                    self.ticks.push((i as u32, pos as u32));
                }
                MaintEvent::Refresh(i) if online(i) => {
                    self.refreshes_sorted.push((i as u32, pos as u32));
                }
                _ => {}
            }
        }
        self.ticks_sorted.extend_from_slice(&self.ticks);
        // Nodes are unique within each list (one tick / one refresh
        // outstanding per node), so sorting the tuples sorts by node.
        self.ticks_sorted.sort_unstable();
        self.refreshes_sorted.sort_unstable();

        // Merge the two node-sorted lists into per-node finalize ops,
        // ordering a node's own tick vs refresh by batch position.
        let (mut a, mut b) = (0, 0);
        while a < self.ticks_sorted.len() || b < self.refreshes_sorted.len() {
            let tick = self.ticks_sorted.get(a);
            let refresh = self.refreshes_sorted.get(b);
            let discover_only = |node| NodeOps {
                node,
                first: MaintKind::Discover,
                second: None,
            };
            let refresh_only = |node| NodeOps {
                node,
                first: MaintKind::Refresh,
                second: None,
            };
            let ops = match (tick, refresh) {
                (Some(&(tn, tp)), Some(&(rn, rp))) => {
                    if tn == rn {
                        a += 1;
                        b += 1;
                        let (first, second) = if tp < rp {
                            (MaintKind::Discover, MaintKind::Refresh)
                        } else {
                            (MaintKind::Refresh, MaintKind::Discover)
                        };
                        NodeOps {
                            node: tn,
                            first,
                            second: Some(second),
                        }
                    } else if tn < rn {
                        a += 1;
                        discover_only(tn)
                    } else {
                        b += 1;
                        refresh_only(rn)
                    }
                }
                (Some(&(tn, _)), None) => {
                    a += 1;
                    discover_only(tn)
                }
                (None, Some(&(rn, _))) => {
                    b += 1;
                    refresh_only(rn)
                }
                (None, None) => unreachable!("loop condition"),
            };
            self.finalize.push(ops);
        }
        self.tick_nodes
            .extend(self.ticks_sorted.iter().map(|&(i, _)| i as usize));
        self.finalize_nodes
            .extend(self.finalize.iter().map(|o| o.node as usize));
    }
}

/// The deterministic stagger offset of `node`'s periodic event: a
/// uniformly random point on the [`STAGGER_COHORTS`]-slot lattice of one
/// period, keyed — not drawn from shared generator state — so schedule
/// construction order cannot perturb any other random decision.
fn stagger_offset(seed: u64, tag: u64, node: usize, start: SimTime, period: SimDuration) -> SimDuration {
    let period_ms = period.as_millis().max(1);
    let quantum = (period_ms / STAGGER_COHORTS).max(1);
    let cohorts = period_ms / quantum;
    let mut rng = SplitMix64::keyed(&[seed, tag, node as u64, start.as_millis()]);
    SimDuration::from_millis(quantum * rng.range_u64(cohorts))
}

/// Phase A of one batch, for one online ticking node: bootstrap an empty
/// coarse view from the online index, then compute *and apply* the
/// node's shuffle proposal. Touches only `shuffle` (the node's own
/// state); all randomness is counter-keyed by `(run_seed, node,
/// timestamp)`, so any worker on any thread produces the same result.
fn propose_tick(
    seed: u64,
    online: &OnlineIndex,
    now: SimTime,
    i: usize,
    shuffle: &mut ShuffleNode,
    seeds: &mut Vec<u32>,
) -> Option<ShuffleProposal> {
    if shuffle.view().is_empty() {
        let mut rng = SplitMix64::keyed(&[seed, STREAM_BOOTSTRAP, i as u64, now.as_millis()]);
        online.sample_excluding(&mut rng, BOOTSTRAP_SEEDS, i, seeds);
        shuffle.bootstrap(seeds.iter().map(|&j| NodeId::new(j as u64)));
    }
    let mut rng = SplitMix64::keyed(&[seed, STREAM_SHUFFLE, i as u64, now.as_millis()]);
    let proposal = shuffle.propose(&mut rng)?;
    shuffle.apply(&proposal);
    Some(proposal)
}

/// One propose-phase work item: a ticking node, exclusive access to its
/// shuffle state, and the slot its proposal lands in.
struct ProposeSlot<'a> {
    node: usize,
    shuffle: &'a mut ShuffleNode,
    proposal: Option<ShuffleProposal>,
}

/// Read-only simulation context for finalize-phase workers: enough state
/// to run discovery and refresh for any node against the post-commit
/// shuffle views, without touching the membership being rewritten.
struct MaintCtx<'a> {
    predicate: &'a SimPredicate,
    oracle: &'a SimOracle,
    hashes: &'a PairHashes,
    shuffles: &'a [ShuffleNode],
    now: SimTime,
}

impl MaintCtx<'_> {
    fn estimate(&self, querier: usize, target: usize) -> Option<Availability> {
        self.oracle.estimate(
            NodeId::new(querier as u64),
            NodeId::new(target as u64),
            self.now,
        )
    }

    /// Discovery pass over node `i`'s coarse view, straight off the view
    /// iterator — no intermediate candidate collection.
    fn discover_into(&self, i: usize, membership: &mut Membership) {
        let Some(own_av) = self.estimate(i, i) else {
            return;
        };
        let own = NodeInfo::new(NodeId::new(i as u64), own_av);
        for candidate in self.shuffles[i].view().ids() {
            let y = candidate.raw() as usize;
            if y == i || membership.contains(candidate) {
                continue;
            }
            let Some(y_av) = self.estimate(i, y) else {
                continue;
            };
            let info = NodeInfo::new(candidate, y_av);
            if let Some(sliver) =
                self.predicate
                    .classify_hashed(own, info, self.hashes.get(i, y), 0.0)
            {
                membership.insert(
                    Neighbor {
                        id: candidate,
                        cached_availability: y_av,
                        added_at: self.now,
                        refreshed_at: self.now,
                    },
                    sliver,
                );
            }
        }
    }

    /// Refresh pass over node `i`'s lists, reclassifying in place (see
    /// [`Membership::refresh_with`]); `migrants` is reusable scratch.
    fn refresh_into(
        &self,
        i: usize,
        membership: &mut Membership,
        migrants: &mut Vec<(Neighbor, Sliver)>,
    ) {
        let Some(own_av) = self.estimate(i, i) else {
            return;
        };
        let own = NodeInfo::new(NodeId::new(i as u64), own_av);
        membership.refresh_with(self.now, migrants, |id| {
            let y = id.raw() as usize;
            let y_av = self.estimate(i, y)?; // oracle lost track: evict
            let sliver =
                self.predicate
                    .classify_hashed(own, NodeInfo::new(id, y_av), self.hashes.get(i, y), 0.0)?;
            Some((y_av, sliver))
        });
    }

    /// Runs one node's finalize ops in intra-batch order.
    fn finalize_node(
        &self,
        ops: NodeOps,
        membership: &mut Membership,
        migrants: &mut Vec<(Neighbor, Sliver)>,
    ) {
        for kind in [Some(ops.first), ops.second].into_iter().flatten() {
            match kind {
                MaintKind::Discover => self.discover_into(ops.node as usize, membership),
                MaintKind::Refresh => {
                    self.refresh_into(ops.node as usize, membership, migrants)
                }
            }
        }
    }
}

/// The persistent event-driven maintenance schedule.
///
/// Built once, on the first event-driven advance, and kept across
/// [`AvmemSim::warm_up`] / [`AvmemSim::advance_to`] calls: the engine
/// carries every node's pending tick/refresh events forward, so resuming
/// maintenance costs nothing instead of the `O(N)` schedule rebuild (and
/// re-staggering) each call used to pay. A periodic protocol's phase is a
/// property of the node, not of how the driver chops the timeline into
/// advances — `warm_up(1h)` twice is now identical to `warm_up(2h)` once.
#[derive(Debug, Default)]
struct MaintSchedule {
    engine: Engine<MaintEvent>,
    /// Cohort scratch, reused across batches.
    batch: Vec<MaintEvent>,
    /// Phase-decomposition scratch, reused across batches.
    plan: BatchPlan,
}

/// Lightweight overlay-health numbers, computed by
/// [`AvmemSim::health_stats`] without building an [`OverlaySnapshot`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthStats {
    /// Nodes online at sample time.
    pub online: usize,
    /// Mean total degree (|HS| + |VS|) over online nodes.
    pub mean_degree: f64,
    /// Fraction of online nodes inside the largest weakly-connected
    /// component of the both-sliver overlay.
    pub largest_component: f64,
}

/// The full-system simulation.
pub struct AvmemSim {
    trace: ChurnTrace,
    config: SimConfig,
    predicate: SimPredicate,
    oracle: SimOracle,
    hashes: Arc<PairHashes>,
    memberships: Vec<Membership>,
    shuffles: Vec<ShuffleNode>,
    now: SimTime,
    net: Network,
    rng: Xoshiro256,
    /// Per-slot cache of the online population (bootstrap seeding,
    /// initiator selection); refreshed lazily as the clock advances.
    online: OnlineIndex,
    n_star: f64,
    /// Seed for the per-node randomized candidate order used by the
    /// converged rebuild (see [`AvmemSim::rebuild_converged`]).
    member_order_seed: u64,
    /// Persistent event-driven schedule (`None` until the first
    /// event-driven advance builds it).
    maint: Option<MaintSchedule>,
}

impl std::fmt::Debug for AvmemSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AvmemSim")
            .field("nodes", &self.trace.num_nodes())
            .field("now", &self.now)
            .field("n_star", &self.n_star)
            .field("predicate", &self.predicate)
            .finish_non_exhaustive()
    }
}

impl AvmemSim {
    /// Builds a simulation over `trace` with the given configuration.
    ///
    /// `N*` is derived as the trace's mean online population and the
    /// availability PDF as the (availability-weighted) distribution of
    /// online nodes — both quantities the paper assumes are computed
    /// offline by a crawler and distributed consistently to all nodes.
    pub fn new(trace: ChurnTrace, config: SimConfig) -> Self {
        let hashes = Arc::new(PairHashes::with_budget(
            trace.num_nodes(),
            config.hash_budget,
        ));
        AvmemSim::with_hashes(trace, config, hashes)
    }

    /// Like [`AvmemSim::new`] but reusing a precomputed pair-hash matrix
    /// — experiment sweeps building many simulations over the same
    /// population share the `O(N²)` hashing work.
    ///
    /// # Panics
    ///
    /// Panics if the matrix size does not match the trace population.
    pub fn with_hashes(trace: ChurnTrace, config: SimConfig, hashes: Arc<PairHashes>) -> Self {
        let n = trace.num_nodes();
        assert_eq!(hashes.len(), n, "hash matrix size must match population");
        let stats = trace.stats();
        let n_star = stats.mean_online.max(2.0);

        let weighted: Vec<(Availability, f64)> = (0..n)
            .map(|i| {
                let av = trace.long_term_availability(i);
                (av, av.value())
            })
            .collect();
        let pdf = AvailabilityPdf::from_weighted_sample(&weighted, config.pdf_buckets);

        let predicate = match config.predicate {
            PredicateChoice::Avmem {
                epsilon,
                vertical,
                horizontal,
            } => SimPredicate::Avmem(AvmemPredicate::new(
                epsilon, n_star, vertical, horizontal, pdf,
            )),
            PredicateChoice::Random { expected_degree } => {
                SimPredicate::Random(RandomPredicate::with_expected_degree(
                    expected_degree,
                    n as f64,
                ))
            }
        };

        let mut seeder = SplitMix64::new(config.seed);
        let mut oracle = SimOracle::build(config.oracle, &trace, seeder.next_u64());
        // The AVMON service sweeps its ping/aggregate phases on the
        // worker pool; fan them out like the maintenance engine's
        // per-cohort phases (bit-identical for every thread count).
        oracle.set_threads(config.engine.threads());
        let net = Network::new(config.latency, 0.0, seeder.next_u64());
        let rng = Xoshiro256::new(seeder.next_u64());

        let shuffle_config = ShuffleConfig::for_system_size(n);
        let mut shuffle_seeder = SplitMix64::new(seeder.next_u64());
        let shuffles = (0..n)
            .map(|i| {
                ShuffleNode::new(
                    NodeId::new(i as u64),
                    shuffle_config,
                    shuffle_seeder.fork(i as u64).next_u64(),
                )
            })
            .collect();

        AvmemSim {
            hashes,
            memberships: (0..n).map(|i| Membership::new(NodeId::new(i as u64))).collect(),
            trace,
            config,
            predicate,
            oracle,
            shuffles,
            now: SimTime::ZERO,
            net,
            rng,
            online: OnlineIndex::new(),
            n_star,
            member_order_seed: seeder.next_u64(),
            maint: None,
        }
    }

    /// The churn trace driving the simulation.
    pub fn trace(&self) -> &ChurnTrace {
        &self.trace
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The derived stable-system-size parameter `N*`.
    pub fn n_star(&self) -> f64 {
        self.n_star
    }

    /// The predicate in force.
    pub fn predicate(&self) -> &SimPredicate {
        &self.predicate
    }

    /// The availability oracle in force.
    pub fn oracle(&self) -> &SimOracle {
        &self.oracle
    }

    /// A node's membership lists.
    ///
    /// # Panics
    ///
    /// Panics if `id` is outside the population.
    pub fn membership(&self, id: NodeId) -> &Membership {
        &self.memberships[self.index(id)]
    }

    fn index(&self, id: NodeId) -> usize {
        let i = id.raw() as usize;
        assert!(i < self.trace.num_nodes(), "unknown node {id}");
        i
    }

    fn estimated_availability(&self, querier: usize, target: usize) -> Option<Availability> {
        self.oracle.estimate(
            NodeId::new(querier as u64),
            NodeId::new(target as u64),
            self.now,
        )
    }

    /// Advances simulation time by `duration`, running maintenance.
    ///
    /// In [`MaintenanceMode::Converged`] the membership lists are rebuilt
    /// from the predicate at the end of the interval. In
    /// [`MaintenanceMode::EventDriven`] the shuffle/discovery/refresh
    /// sub-protocols run period by period through the event engine; the
    /// schedule persists across calls, so chopping an interval into many
    /// `warm_up` calls produces the same state as one big call.
    pub fn warm_up(&mut self, duration: SimDuration) {
        let target = self.now + duration;
        match self.config.maintenance {
            MaintenanceMode::Converged => {
                self.oracle.advance(&self.trace, target);
                self.now = target;
                self.online.refresh(&self.trace, target);
                self.rebuild_converged();
            }
            MaintenanceMode::EventDriven {
                protocol_period,
                refresh_period,
            } => {
                self.run_event_driven(target, protocol_period, refresh_period);
            }
        }
    }

    /// Advances the simulation clock to the absolute instant `target`,
    /// running any maintenance that falls due on the way — the injection
    /// hook scenario drivers interleave operation traffic with.
    ///
    /// In [`MaintenanceMode::EventDriven`] every timestamp cohort with
    /// `time ≤ target` is processed (identically to [`AvmemSim::warm_up`],
    /// off the same persistent schedule), so operations fired after the
    /// call observe the live, possibly-unconverged overlay exactly as it
    /// stands between cohorts. In [`MaintenanceMode::Converged`] only the
    /// clock, the oracle and the online index advance — the lists keep
    /// their last rebuilt state (call [`AvmemSim::warm_up`] when a rebuild
    /// is wanted), so a driver controls staleness explicitly.
    ///
    /// A `target` at or before the current clock is a no-op.
    pub fn advance_to(&mut self, target: SimTime) {
        if target <= self.now {
            return;
        }
        match self.config.maintenance {
            MaintenanceMode::Converged => {
                self.oracle.advance(&self.trace, target);
                self.now = target;
                self.online.refresh(&self.trace, target);
            }
            MaintenanceMode::EventDriven {
                protocol_period,
                refresh_period,
            } => {
                self.run_event_driven(target, protocol_period, refresh_period);
            }
        }
    }

    /// Timestamp of the next pending maintenance event, if any — `None`
    /// for converged maintenance or before the first event-driven advance.
    pub fn next_maintenance_at(&self) -> Option<SimTime> {
        self.maint.as_ref().and_then(|m| m.engine.peek_time())
    }

    /// Rebuilds every node's lists directly from the predicate — the
    /// fixed point the discovery protocol converges to.
    ///
    /// Candidates are inserted in a *per-node randomized order*, not
    /// index order: real discovery meets candidates in shuffled-view
    /// order, and the deterministic gossip iteration of §3.2 relies on
    /// different nodes having decorrelated list orders (identical
    /// prefixes would make every gossiper target the same few nodes).
    /// Accepted candidates are collected first and each list is then
    /// Fisher–Yates-shuffled with the node's private seed — the
    /// restriction of a uniform permutation of the population to the
    /// accepted subset is itself a uniform permutation of that subset,
    /// so this matches the seed version's shuffle-everything-then-filter
    /// order in distribution at `O(degree)` instead of `O(N)` RNG work
    /// per node.
    ///
    /// The rebuild is the simulator's hot path and is heavily optimized —
    /// see [`AvmemSim::rebuild_node`] — but produces HS/VS *sets*
    /// identical to a naive scan classifying every ordered pair (the
    /// `rebuild_equivalence` integration tests pin this down). Nodes are
    /// independent, so the population is rebuilt in parallel on the
    /// persistent worker pool; results do not depend on the thread count.
    fn rebuild_converged(&mut self) {
        let n = self.trace.num_nodes();
        // With a querier-independent oracle (exact, shared-noise, AVMON
        // aggregates) all nodes agree on every availability, so one
        // snapshot and one availability-sorted index serve the whole
        // rebuild: HS candidates come from a band range-scan, VS
        // candidates from its complement. A per-querier oracle forces
        // per-source estimates (full scan).
        let shared: Option<CandidateIndex> = self.oracle.querier_independent().then(|| {
            CandidateIndex::build((0..n).map(|y| (y, self.estimated_availability(y, y))))
        });
        let memo = SimMemo::build(&self.predicate);
        let vertical_table: Option<Vec<f64>> =
            shared.as_ref().and_then(|index| memo.vertical_table(index));
        let mut memberships = std::mem::take(&mut self.memberships);
        let sim = &*self;
        par_chunks_mut(&mut memberships, 1, default_threads(), |offset, chunk| {
            let mut scratch = RebuildScratch::default();
            for (k, slot) in chunk.iter_mut().enumerate() {
                *slot = sim.rebuild_node(
                    offset + k,
                    &memo,
                    shared.as_ref(),
                    vertical_table.as_deref(),
                    &mut scratch,
                );
            }
        });
        self.memberships = memberships;
    }

    /// Builds one node's converged membership lists.
    ///
    /// Fast-path structure (all equivalences are set-level, pinned by
    /// tests):
    ///
    /// * thresholds come from the per-rebuild [`SimMemo`] — the
    ///   horizontal band integrals once per node, vertical PDF lookups
    ///   from per-bucket tables — instead of two PDF integrations per
    ///   in-band pair;
    /// * pair hashes come from the row cache ([`PairHashes::row`]);
    /// * with a shared availability index, HS candidates are enumerated
    ///   by an `O(log N + band)` range-scan and VS candidates by its
    ///   complement (only float-slack stragglers pay a distance check);
    ///   both accepted lists are then shuffled per node for decorrelated
    ///   insertion order.
    fn rebuild_node(
        &self,
        x: usize,
        memo: &SimMemo<'_>,
        shared: Option<&CandidateIndex>,
        vertical_table: Option<&[f64]>,
        scratch: &mut RebuildScratch,
    ) -> Membership {
        let n = self.trace.num_nodes();
        let mut membership = Membership::new(NodeId::new(x as u64));
        let Some(own_av) = self.estimated_availability(x, x) else {
            return membership;
        };
        let source = memo.source(own_av);
        let RebuildScratch { row, hs, vs } = scratch;
        hs.clear();
        vs.clear();
        let row: &[f64] = self.hashes.row(x, row);
        match shared {
            Some(index) => {
                let epsilon = source.epsilon();
                let horizontal = source.horizontal();
                let entries = index.entries();
                let (band_start, band_end) = index.fuzzy_range(own_av, epsilon);
                // In and around the band: the exact distance check picks
                // the sliver; the memoized horizontal threshold is one
                // constant for every in-band candidate.
                for &(v, y) in &entries[band_start..band_end] {
                    let y = y as usize;
                    if y == x {
                        continue;
                    }
                    let y_av = Availability::saturating(v);
                    if own_av.distance(y_av) < epsilon {
                        if row[y] <= horizontal {
                            hs.push((y, y_av));
                        }
                    } else if row[y] <= source.vertical(y_av) {
                        vs.push((y, y_av));
                    }
                }
                // Certainly outside the band: pure VS. With a
                // source-independent vertical rule the thresholds are
                // precomputed per rebuild, aligned with the index.
                if let Some(table) = vertical_table {
                    for k in 0..band_start {
                        let (v, y) = entries[k];
                        if row[y as usize] <= table[k] {
                            vs.push((y as usize, Availability::saturating(v)));
                        }
                    }
                    for k in band_end..entries.len() {
                        let (v, y) = entries[k];
                        if row[y as usize] <= table[k] {
                            vs.push((y as usize, Availability::saturating(v)));
                        }
                    }
                } else {
                    for &(v, y) in entries[..band_start].iter().chain(&entries[band_end..]) {
                        let y = y as usize;
                        let y_av = Availability::saturating(v);
                        if row[y] <= source.vertical(y_av) {
                            vs.push((y, y_av));
                        }
                    }
                }
            }
            None => {
                // Querier-dependent estimates: full per-source scan.
                for (y, &hash) in row.iter().enumerate().take(n) {
                    if y == x {
                        continue;
                    }
                    let Some(y_av) = self.estimated_availability(x, y) else {
                        continue;
                    };
                    match source.classify_hashed(y_av, hash) {
                        Some(Sliver::Horizontal) => hs.push((y, y_av)),
                        Some(Sliver::Vertical) => vs.push((y, y_av)),
                        None => {}
                    }
                }
            }
        }
        let mut order_rng = SplitMix64::new(
            self.member_order_seed ^ (x as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        );
        order_rng.shuffle(hs);
        order_rng.shuffle(vs);
        let neighbor = |y: usize, y_av: Availability| Neighbor {
            id: NodeId::new(y as u64),
            cached_availability: y_av,
            added_at: self.now,
            refreshed_at: self.now,
        };
        for &(y, y_av) in hs.iter() {
            membership.insert(neighbor(y, y_av), Sliver::Horizontal);
        }
        for &(y, y_av) in vs.iter() {
            membership.insert(neighbor(y, y_av), Sliver::Vertical);
        }
        membership
    }

    /// Runs the shuffle/discovery/refresh sub-protocols through the event
    /// engine, one *timestamp cohort* at a time.
    ///
    /// Node offsets are staggered on a coarse per-period lattice (see
    /// [`STAGGER_COHORTS`]) so cohorts are sizeable, and each cohort runs
    /// in three phases:
    ///
    /// 1. **propose** — every online ticking node bootstraps (if its view
    ///    is empty) and computes+applies its shuffle proposal, touching
    ///    only its own state, with counter-keyed randomness. Per-node
    ///    independent ⇒ parallelizable.
    /// 2. **commit** — the request/reply exchange of each proposal is
    ///    applied in batch (seq) order; this is where initiators mutate
    ///    responders, so conflicts (two initiators hitting one responder,
    ///    a responder that itself initiated) resolve exactly as a serial
    ///    drain of the cohort would. Always serial.
    /// 3. **finalize** — discovery over the post-commit view and refresh,
    ///    per node, in intra-batch order. Per-node independent ⇒
    ///    parallelizable.
    ///
    /// [`MaintenanceEngine::Serial`] and [`MaintenanceEngine::Parallel`]
    /// execute these identical semantics; results are bit-equal across
    /// engines and thread counts (pinned by the
    /// `event_driven_equivalence` integration tests).
    fn run_event_driven(
        &mut self,
        target: SimTime,
        protocol_period: SimDuration,
        refresh_period: SimDuration,
    ) {
        let seed = self.config.seed;
        // The schedule is built once — on the first event-driven advance —
        // and then carried across calls with its pending events intact
        // (see [`MaintSchedule`]). Only that first call pays the `O(N)`
        // population scan and stagger draw.
        let mut maint = self.maint.take().unwrap_or_else(|| {
            let mut schedule = MaintSchedule::default();
            for i in 0..self.trace.num_nodes() {
                let tick =
                    stagger_offset(seed, STREAM_STAGGER_TICK, i, self.now, protocol_period);
                let refresh =
                    stagger_offset(seed, STREAM_STAGGER_REFRESH, i, self.now, refresh_period);
                schedule.engine.schedule(self.now + tick, MaintEvent::Tick(i));
                schedule
                    .engine
                    .schedule(self.now + refresh, MaintEvent::Refresh(i));
            }
            schedule
        });
        let MaintSchedule {
            ref mut engine,
            ref mut batch,
            ref mut plan,
        } = maint;
        // Resolved once: `threads()` may probe the machine (a syscall),
        // far too costly per batch.
        let threads = self.config.engine.threads();
        while let Some(t) = engine.pop_batch_until(target, batch) {
            // Shared time-dependent state advances once per distinct
            // timestamp: the oracle (AVMON ping processing) and the
            // online index (slot-boundary crossings).
            self.oracle.advance(&self.trace, t);
            self.online.refresh(&self.trace, t);
            self.now = self.now.max(t);
            // A parallel engine with one effective worker degenerates to
            // the straight-line implementation (they are bit-identical),
            // skipping the plan/gather bookkeeping single-core machines
            // would pay for nothing.
            if threads <= 1 {
                self.run_batch_serial(t, batch);
            } else {
                plan.build(batch, |i| self.trace.is_online(i, t));
                self.run_batch_parallel(t, plan, threads);
            }
            for &event in batch.iter() {
                match event {
                    MaintEvent::Tick(_) => engine.schedule(t + protocol_period, event),
                    MaintEvent::Refresh(_) => engine.schedule(t + refresh_period, event),
                }
            }
        }
        self.maint = Some(maint);
        self.oracle.advance(&self.trace, target);
        self.now = target;
        self.online.refresh(&self.trace, target);
    }

    /// Reference implementation of one batch: the three phases as plain
    /// sequential loops in batch order. This is the semantics
    /// [`AvmemSim::run_batch_parallel`] is pinned against.
    fn run_batch_serial(&mut self, t: SimTime, batch: &[MaintEvent]) {
        let seed = self.config.seed;
        // Phase 1 — propose (per-node independent; batch order is as good
        // as any).
        let mut proposals: Vec<(usize, ShuffleProposal)> = Vec::new();
        let mut seeds = Vec::new();
        for &event in batch {
            let MaintEvent::Tick(i) = event else { continue };
            if !self.trace.is_online(i, t) {
                continue;
            }
            if let Some(p) =
                propose_tick(seed, &self.online, t, i, &mut self.shuffles[i], &mut seeds)
            {
                proposals.push((i, p));
            }
        }
        // Phase 2 — commit exchanges in batch (seq) order.
        for (i, proposal) in proposals {
            self.commit_exchange(t, i, proposal);
        }
        // Phase 3 — finalize: discovery over the post-commit views, and
        // refresh, in batch order (per-node independent).
        let ctx = MaintCtx {
            predicate: &self.predicate,
            oracle: &self.oracle,
            hashes: &self.hashes,
            shuffles: &self.shuffles,
            now: t,
        };
        let mut migrants = Vec::new();
        for &event in batch {
            match event {
                MaintEvent::Tick(i) if self.trace.is_online(i, t) => {
                    ctx.discover_into(i, &mut self.memberships[i]);
                }
                MaintEvent::Refresh(i) if self.trace.is_online(i, t) => {
                    ctx.refresh_into(i, &mut self.memberships[i], &mut migrants);
                }
                _ => {}
            }
        }
    }

    /// Phase-parallel execution of one batch: propose and finalize spread
    /// the cohort's nodes over scoped worker threads (each node's state
    /// reached through [`gather_mut`] — exclusive, disjoint borrows),
    /// commit stays serial in seq order. Bit-identical to
    /// [`AvmemSim::run_batch_serial`] for every thread count, because
    /// the parallel phases are per-node independent and their randomness
    /// is keyed, not drawn from shared state.
    fn run_batch_parallel(&mut self, t: SimTime, plan: &BatchPlan, threads: usize) {
        let seed = self.config.seed;
        // Phase 1 — propose.
        let mut proposals: Vec<Option<ShuffleProposal>> = {
            let mut shuffles = std::mem::take(&mut self.shuffles);
            let mut slots: Vec<ProposeSlot<'_>> = gather_mut(&mut shuffles, &plan.tick_nodes)
                .into_iter()
                .zip(&plan.tick_nodes)
                .map(|(shuffle, &node)| ProposeSlot {
                    node,
                    shuffle,
                    proposal: None,
                })
                .collect();
            let online = &self.online;
            par_chunks_mut(&mut slots, 1, threads, |_, chunk| {
                let mut seeds = Vec::new();
                for slot in chunk {
                    slot.proposal =
                        propose_tick(seed, online, t, slot.node, slot.shuffle, &mut seeds);
                }
            });
            let proposals = slots.into_iter().map(|s| s.proposal).collect();
            self.shuffles = shuffles;
            proposals
        };
        // Phase 2 — commit exchanges in batch (seq) order.
        for &(node, _) in &plan.ticks {
            let slot = plan
                .ticks_sorted
                .binary_search_by_key(&node, |&(i, _)| i)
                .expect("ticking node missing from sorted plan");
            if let Some(proposal) = proposals[slot].take() {
                self.commit_exchange(t, node as usize, proposal);
            }
        }
        // Phase 3 — finalize.
        let mut memberships = std::mem::take(&mut self.memberships);
        {
            let ctx = MaintCtx {
                predicate: &self.predicate,
                oracle: &self.oracle,
                hashes: &self.hashes,
                shuffles: &self.shuffles,
                now: t,
            };
            let mut slots: Vec<(NodeOps, &mut Membership)> = plan
                .finalize
                .iter()
                .copied()
                .zip(gather_mut(&mut memberships, &plan.finalize_nodes))
                .collect();
            par_chunks_mut(&mut slots, 1, threads, |_, chunk| {
                let mut migrants = Vec::new();
                for (ops, membership) in chunk {
                    ctx.finalize_node(*ops, membership, &mut migrants);
                }
            });
        }
        self.memberships = memberships;
    }

    /// Applies one proposed shuffle exchange: route the request to the
    /// target if it is online (request/reply both land immediately — the
    /// exchange is atomic at cohort granularity), or record a timeout.
    fn commit_exchange(&mut self, now: SimTime, i: usize, proposal: ShuffleProposal) {
        let target = proposal.target();
        let tgt = target.raw() as usize;
        if tgt < self.shuffles.len() && self.trace.is_online(tgt, now) {
            let (_, request) = proposal.into_request();
            let (initiator, responder) = two_mut(&mut self.shuffles, i, tgt);
            let reply = responder.handle_request(request);
            initiator.handle_reply(reply);
        } else {
            self.shuffles[i].handle_timeout(target);
        }
    }

    /// Captures the current overlay state for analysis.
    pub fn snapshot(&self) -> OverlaySnapshot {
        let n = self.trace.num_nodes();
        let nodes = (0..n)
            .map(|i| {
                let estimated = self
                    .estimated_availability(i, i)
                    .unwrap_or_else(|| self.trace.long_term_availability(i));
                NodeSnapshot {
                    id: NodeId::new(i as u64),
                    online: self.trace.is_online(i, self.now),
                    estimated_availability: estimated,
                    true_availability: self.trace.long_term_availability(i),
                    hs: self.memberships[i].hs().iter().map(|nb| nb.id).collect(),
                    vs: self.memberships[i].vs().iter().map(|nb| nb.id).collect(),
                }
            })
            .collect();
        OverlaySnapshot::new(nodes, self.predicate.epsilon())
    }

    /// Streaming overlay health: the numbers a health sample needs,
    /// without materializing a snapshot.
    ///
    /// [`snapshot`](Self::snapshot) clones every node's sliver lists and
    /// queries the oracle per node — fine for analysis, but at 10⁵–10⁶
    /// hosts a periodic health probe spends more memory and time on the
    /// clone than the whole maintenance slice it interrupts. This path
    /// walks the live membership state once: online count from the
    /// trace, mean degree with the same accumulation order as
    /// [`OverlaySnapshot::mean_degree`] (ascending node index, so the
    /// two agree bit for bit), and the largest weakly-connected
    /// component over both-endpoint-online sliver edges via union-find
    /// (the same component structure the snapshot's BFS finds).
    pub fn health_stats(&self) -> HealthStats {
        let n = self.trace.num_nodes();
        let mut online = vec![false; n];
        let mut online_count = 0usize;
        for (i, flag) in online.iter_mut().enumerate() {
            if self.trace.is_online(i, self.now) {
                *flag = true;
                online_count += 1;
            }
        }
        if online_count == 0 {
            return HealthStats {
                online: 0,
                mean_degree: 0.0,
                largest_component: 0.0,
            };
        }
        fn find(parent: &mut [u32], mut x: u32) -> u32 {
            while parent[x as usize] != x {
                // Path halving.
                parent[x as usize] = parent[parent[x as usize] as usize];
                x = parent[x as usize];
            }
            x
        }
        let mut parent: Vec<u32> = (0..n as u32).collect();
        let mut degree_sum = 0.0f64;
        for i in 0..n {
            if !online[i] {
                continue;
            }
            let membership = &self.memberships[i];
            degree_sum += (membership.hs().len() + membership.vs().len()) as f64;
            for neighbor in membership.hs().iter().chain(membership.vs().iter()) {
                let j = neighbor.id.raw() as usize;
                if online[j] {
                    let (a, b) = (find(&mut parent, i as u32), find(&mut parent, j as u32));
                    if a != b {
                        parent[a as usize] = b;
                    }
                }
            }
        }
        let mut component_size = vec![0u32; n];
        let mut best = 0u32;
        for (i, &up) in online.iter().enumerate() {
            if up {
                let root = find(&mut parent, i as u32) as usize;
                component_size[root] += 1;
                best = best.max(component_size[root]);
            }
        }
        HealthStats {
            online: online_count,
            mean_degree: degree_sum / online_count as f64,
            largest_component: f64::from(best) / online_count as f64,
        }
    }

    /// Picks a uniformly random *online* node whose true availability
    /// lies in `band`, or `None` if no such node is online.
    ///
    /// Runs off the per-slot [`OnlineIndex`] with a count-then-select
    /// pass, so repeated initiator draws (operation experiments fire
    /// thousands per snapshot) materialize no candidate `Vec`.
    pub fn random_online_initiator(&mut self, band: InitiatorBand) -> Option<NodeId> {
        self.online.refresh(&self.trace, self.now);
        let in_band =
            |i: &&u32| band.contains(self.trace.long_term_availability(**i as usize));
        let eligible = self.online.online().iter().filter(in_band).count();
        if eligible == 0 {
            return None;
        }
        let pick = self.rng.index(eligible);
        let node = self
            .online
            .online()
            .iter()
            .filter(in_band)
            .nth(pick)
            .copied()
            .expect("pick < eligible count");
        Some(NodeId::new(node as u64))
    }

    /// A node's coarse (shuffle) view — the discovery substrate's state,
    /// exposed for analysis and the engine-equivalence tests.
    ///
    /// # Panics
    ///
    /// Panics if `id` is outside the population.
    pub fn shuffle_view(&self, id: NodeId) -> &View {
        self.shuffles[self.index(id)].view()
    }

    /// All online nodes whose true availability lies in `target`.
    pub fn online_nodes_in(&self, target: AvailabilityTarget) -> Vec<NodeId> {
        self.trace
            .online_at(self.now)
            .into_iter()
            .filter(|&i| target.contains(self.trace.long_term_availability(i)))
            .map(|i| NodeId::new(i as u64))
            .collect()
    }

    /// Runs one anycast from `initiator` at the current time.
    pub fn anycast(
        &mut self,
        initiator: NodeId,
        target: AvailabilityTarget,
        config: AnycastConfig,
    ) -> AnycastOutcome {
        let world = WorldView {
            trace: &self.trace,
            oracle: &self.oracle,
            memberships: &self.memberships,
            now: self.now,
        };
        run_anycast(&world, &mut self.net, &mut self.rng, initiator, target, config)
    }

    /// Runs one multicast from `initiator` at the current time.
    pub fn multicast(
        &mut self,
        initiator: NodeId,
        target: AvailabilityTarget,
        config: MulticastConfig,
    ) -> MulticastOutcome {
        let world = WorldView {
            trace: &self.trace,
            oracle: &self.oracle,
            memberships: &self.memberships,
            now: self.now,
        };
        run_multicast(&world, &mut self.net, &mut self.rng, initiator, target, config)
    }

    /// A borrowed [`OverlayWorld`] view of the current state, for custom
    /// measurements.
    pub fn world(&self) -> impl OverlayWorld + '_ {
        WorldView {
            trace: &self.trace,
            oracle: &self.oracle,
            memberships: &self.memberships,
            now: self.now,
        }
    }
}

/// Borrowed world view over the simulation state.
struct WorldView<'a> {
    trace: &'a ChurnTrace,
    oracle: &'a SimOracle,
    memberships: &'a [Membership],
    now: SimTime,
}

impl OverlayWorld for WorldView<'_> {
    fn node_ids(&self) -> Vec<NodeId> {
        self.trace.node_ids().collect()
    }

    fn is_online(&self, id: NodeId) -> bool {
        self.trace.is_online(id.raw() as usize, self.now)
    }

    fn believed_availability(&self, id: NodeId) -> Availability {
        self.oracle
            .estimate(id, id, self.now)
            .unwrap_or_else(|| self.trace.long_term_availability(id.raw() as usize))
    }

    fn true_availability(&self, id: NodeId) -> Availability {
        self.trace.long_term_availability(id.raw() as usize)
    }

    fn neighbors(&self, id: NodeId, scope: SliverScope) -> Vec<Neighbor> {
        self.memberships[id.raw() as usize]
            .neighbors(scope)
            .copied()
            .collect()
    }
}

/// Borrows two distinct elements of a slice mutably.
///
/// # Panics
///
/// Panics if `a == b` or either index is out of bounds.
fn two_mut<T>(slice: &mut [T], a: usize, b: usize) -> (&mut T, &mut T) {
    assert_ne!(a, b, "two_mut needs distinct indices");
    if a < b {
        let (lo, hi) = slice.split_at_mut(b);
        (&mut lo[a], &mut hi[0])
    } else {
        let (lo, hi) = slice.split_at_mut(a);
        (&mut hi[0], &mut lo[b])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avmem_trace::OvernetModel;

    fn small_sim(seed: u64) -> AvmemSim {
        let trace = OvernetModel::default().hosts(120).days(1).generate(3);
        AvmemSim::new(trace, SimConfig::paper_default(seed))
    }

    #[test]
    fn converged_warm_up_builds_lists() {
        let mut sim = small_sim(1);
        sim.warm_up(SimDuration::from_hours(24));
        let snapshot = sim.snapshot();
        assert!(snapshot.mean_degree() > 1.0, "overlay should have edges");
    }

    #[test]
    fn warm_up_advances_clock() {
        let mut sim = small_sim(1);
        sim.warm_up(SimDuration::from_hours(2));
        assert_eq!(sim.now(), SimTime::ZERO + SimDuration::from_hours(2));
    }

    #[test]
    fn health_stats_matches_the_snapshot_metrics() {
        use crate::membership::SliverScope;
        // The streaming health path must agree with the snapshot-based
        // metrics exactly — same mean-degree accumulation order, same
        // component structure — at several points of a churning run.
        let mut sim = small_sim(4);
        for _ in 0..3 {
            sim.warm_up(SimDuration::from_hours(6));
            let stats = sim.health_stats();
            let snapshot = sim.snapshot();
            assert_eq!(stats.online, snapshot.online_count());
            assert_eq!(stats.mean_degree, snapshot.mean_degree());
            assert_eq!(
                stats.largest_component,
                snapshot.largest_component_fraction(SliverScope::Both)
            );
        }
        assert!(sim.health_stats().mean_degree > 1.0, "vacuous overlay");
    }

    #[test]
    fn same_seed_same_overlay() {
        let mut a = small_sim(9);
        let mut b = small_sim(9);
        a.warm_up(SimDuration::from_hours(24));
        b.warm_up(SimDuration::from_hours(24));
        assert_eq!(a.snapshot(), b.snapshot());
    }

    #[test]
    fn event_driven_approaches_converged() {
        let trace = OvernetModel::default().hosts(80).days(1).generate(5);
        let mut converged = AvmemSim::new(trace.clone(), SimConfig::paper_default(2));
        converged.warm_up(SimDuration::from_hours(12));

        let mut config = SimConfig::paper_default(2);
        config.maintenance = MaintenanceMode::paper_event_driven();
        let mut event_driven = AvmemSim::new(trace, config);
        event_driven.warm_up(SimDuration::from_hours(12));

        // Event-driven discovery should have found a sizeable share of the
        // converged overlay's edges for online nodes.
        let conv_snapshot = converged.snapshot();
        let ed_snapshot = event_driven.snapshot();
        let conv_degree = conv_snapshot.mean_degree();
        let ed_degree = ed_snapshot.mean_degree();
        assert!(
            ed_degree > conv_degree * 0.3,
            "event-driven degree {ed_degree} too far below converged {conv_degree}"
        );
    }

    #[test]
    fn event_driven_lists_satisfy_predicate() {
        let trace = OvernetModel::default().hosts(60).days(1).generate(7);
        let mut config = SimConfig::paper_default(3);
        config.maintenance = MaintenanceMode::paper_event_driven();
        let mut sim = AvmemSim::new(trace, config);
        sim.warm_up(SimDuration::from_hours(6));
        // Every listed neighbor must satisfy the predicate under current
        // (exact) availabilities — modulo entries not yet refreshed; with
        // the exact oracle there is no divergence at all.
        for i in 0..sim.trace().num_nodes() {
            let own = NodeInfo::new(
                NodeId::new(i as u64),
                sim.trace().long_term_availability(i),
            );
            for nb in sim.memberships[i].neighbors(SliverScope::Both) {
                let info = NodeInfo::new(nb.id, nb.cached_availability);
                assert!(
                    sim.predicate.member(own, info),
                    "listed neighbor violates predicate"
                );
            }
        }
    }

    #[test]
    fn chopped_event_driven_warm_up_equals_one_big_advance() {
        // The persistent schedule makes warm_up(x); warm_up(y) identical
        // to warm_up(x + y): the periodic protocols keep their phase
        // across call boundaries instead of re-staggering.
        let trace = OvernetModel::default().hosts(90).days(1).generate(19);
        let mut config = SimConfig::paper_default(6);
        config.maintenance = MaintenanceMode::paper_event_driven();
        let mut whole = AvmemSim::new(trace.clone(), config);
        whole.warm_up(SimDuration::from_hours(4));
        let mut chopped = AvmemSim::new(trace, config);
        for _ in 0..16 {
            chopped.warm_up(SimDuration::from_mins(15));
        }
        assert_eq!(whole.now(), chopped.now());
        assert_eq!(whole.snapshot(), chopped.snapshot());
        for i in 0..whole.trace().num_nodes() {
            let id = NodeId::new(i as u64);
            assert_eq!(whole.shuffle_view(id), chopped.shuffle_view(id));
        }
    }

    #[test]
    fn advance_to_matches_warm_up_in_event_driven_mode() {
        let trace = OvernetModel::default().hosts(70).days(1).generate(23);
        let mut config = SimConfig::paper_default(8);
        config.maintenance = MaintenanceMode::paper_event_driven();
        let mut by_duration = AvmemSim::new(trace.clone(), config);
        by_duration.warm_up(SimDuration::from_hours(2));
        let mut by_instant = AvmemSim::new(trace, config);
        by_instant.advance_to(SimTime::ZERO + SimDuration::from_hours(1));
        assert!(by_instant.next_maintenance_at().is_some());
        by_instant.advance_to(SimTime::ZERO + SimDuration::from_hours(2));
        // Backwards/no-op advances change nothing.
        by_instant.advance_to(SimTime::ZERO);
        assert_eq!(by_duration.now(), by_instant.now());
        assert_eq!(by_duration.snapshot(), by_instant.snapshot());
    }

    #[test]
    fn advance_to_in_converged_mode_moves_clock_without_rebuild() {
        let mut sim = small_sim(17);
        sim.warm_up(SimDuration::from_hours(1));
        let before = sim.snapshot();
        assert!(sim.next_maintenance_at().is_none());
        sim.advance_to(SimTime::ZERO + SimDuration::from_hours(3));
        assert_eq!(sim.now(), SimTime::ZERO + SimDuration::from_hours(3));
        // Lists untouched: only clock/oracle/online advanced (the online
        // flags in a fresh snapshot may differ, but memberships may not).
        let after = sim.snapshot();
        for (a, b) in before.nodes().iter().zip(after.nodes()) {
            assert_eq!(a.hs, b.hs);
            assert_eq!(a.vs, b.vs);
        }
    }

    #[test]
    fn anycast_high_target_from_mid_usually_delivers() {
        let mut sim = small_sim(11);
        sim.warm_up(SimDuration::from_hours(24));
        let mut delivered = 0;
        let mut sent = 0;
        for _ in 0..20 {
            let Some(initiator) = sim.random_online_initiator(InitiatorBand::Mid) else {
                continue;
            };
            sent += 1;
            let outcome = sim.anycast(
                initiator,
                AvailabilityTarget::range(0.85, 0.95),
                AnycastConfig::paper_default(),
            );
            if outcome.is_delivered() {
                delivered += 1;
            }
        }
        assert!(sent > 0);
        assert!(
            delivered * 2 >= sent,
            "only {delivered}/{sent} delivered"
        );
    }

    #[test]
    fn multicast_reaches_most_of_range() {
        let mut sim = small_sim(13);
        sim.warm_up(SimDuration::from_hours(24));
        let target = AvailabilityTarget::threshold(0.7);
        let Some(initiator) = sim.random_online_initiator(InitiatorBand::High) else {
            panic!("no high-availability initiator online");
        };
        let outcome = sim.multicast(initiator, target, MulticastConfig::paper_default());
        let world = sim.world();
        let reliability = outcome.reliability(&world, target);
        assert!(
            reliability.unwrap_or(0.0) > 0.5,
            "reliability {reliability:?} too low"
        );
    }

    #[test]
    fn random_predicate_builds_flat_overlay() {
        let trace = OvernetModel::default().hosts(100).days(1).generate(5);
        let mut config = SimConfig::paper_default(4);
        config.predicate = PredicateChoice::Random {
            expected_degree: 12.0,
        };
        let mut sim = AvmemSim::new(trace, config);
        sim.warm_up(SimDuration::from_hours(24));
        let snapshot = sim.snapshot();
        let degree = snapshot.mean_degree();
        assert!(
            (2.0..30.0).contains(&degree),
            "random overlay degree {degree} out of expected range"
        );
    }

    #[test]
    fn initiator_band_respects_bounds() {
        let mut sim = small_sim(15);
        sim.warm_up(SimDuration::from_hours(1));
        for band in [InitiatorBand::Low, InitiatorBand::Mid, InitiatorBand::High] {
            if let Some(node) = sim.random_online_initiator(band) {
                let av = sim.trace().long_term_availability(node.raw() as usize);
                assert!(band.contains(av), "{band:?} initiator has availability {av}");
            }
        }
    }

    #[test]
    fn world_view_is_consistent_with_trace() {
        let mut sim = small_sim(21);
        sim.warm_up(SimDuration::from_hours(2));
        let now = sim.now();
        let online_from_trace: Vec<usize> = sim.trace().online_at(now);
        let world = sim.world();
        for i in 0..sim.trace().num_nodes() {
            let id = NodeId::new(i as u64);
            assert_eq!(world.is_online(id), online_from_trace.contains(&i));
            assert_eq!(
                world.true_availability(id),
                sim.trace().long_term_availability(i)
            );
            // Exact oracle: belief equals truth.
            assert_eq!(
                world.believed_availability(id),
                sim.trace().long_term_availability(i)
            );
        }
    }

    #[test]
    fn online_nodes_in_filters_by_truth() {
        let mut sim = small_sim(22);
        sim.warm_up(SimDuration::from_hours(2));
        let target = AvailabilityTarget::threshold(0.7);
        for id in sim.online_nodes_in(target) {
            let i = id.raw() as usize;
            assert!(sim.trace().is_online(i, sim.now()));
            assert!(target.contains(sim.trace().long_term_availability(i)));
        }
    }

    #[test]
    fn membership_accessor_matches_snapshot() {
        let mut sim = small_sim(23);
        sim.warm_up(SimDuration::from_hours(4));
        let snapshot = sim.snapshot();
        for node in snapshot.nodes() {
            let membership = sim.membership(node.id);
            assert_eq!(membership.hs().len(), node.hs.len());
            assert_eq!(membership.vs().len(), node.vs.len());
        }
    }

    #[test]
    fn two_mut_returns_distinct_elements() {
        let mut v = vec![1, 2, 3, 4];
        let (a, b) = two_mut(&mut v, 3, 1);
        *a += 10;
        *b += 20;
        assert_eq!(v, vec![1, 22, 3, 14]);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn two_mut_same_index_panics() {
        let mut v = vec![1, 2];
        let _ = two_mut(&mut v, 1, 1);
    }
}
