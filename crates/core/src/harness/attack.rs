//! Attack analysis over a running simulation (§4.1, Figs. 5–6).
//!
//! Two experiments, both exercising the receiver-side admission check of
//! [`crate::verify`] under imperfect availability estimates:
//!
//! * **Flooding attack** (Fig. 5): a selfish node tries to message nodes
//!   that are *not* its AVMEM neighbors; the fraction of such
//!   non-neighbors that would accept measures the attack surface. The
//!   paper finds fewer than ~10 % regardless of attacker availability.
//! * **Legitimate rejection rate** (Fig. 6): stale caches and
//!   inconsistent estimates cause receivers to reject some *valid*
//!   senders; below 30 % with no cushion, below ~20 % with cushion 0.1.

use avmem_avmon::AvailabilityOracle;
use avmem_util::NodeId;
use serde::{Deserialize, Serialize};

use crate::harness::AvmemSim;
use crate::membership::SliverScope;
use crate::predicate::MembershipPredicate;

/// Per-availability-bucket attack measurement.
///
/// Bucket `i` covers true attacker/sender availability
/// `[i/buckets, (i+1)/buckets)`; `values[i]` is `None` when no online
/// node fell in the bucket.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttackSeries {
    /// Per-bucket mean fraction (acceptance or rejection).
    pub values: Vec<Option<f64>>,
    /// The cushion used during verification.
    pub cushion: f64,
}

impl AttackSeries {
    /// The maximum bucket value (ignoring empty buckets); `0.0` when all
    /// buckets are empty.
    pub fn max_value(&self) -> f64 {
        self.values
            .iter()
            .flatten()
            .fold(0.0f64, |acc, &v| acc.max(v))
    }

    /// Mean over non-empty buckets; `0.0` when all are empty.
    pub fn mean_value(&self) -> f64 {
        let present: Vec<f64> = self.values.iter().flatten().copied().collect();
        if present.is_empty() {
            0.0
        } else {
            present.iter().sum::<f64>() / present.len() as f64
        }
    }
}

impl AvmemSim {
    /// Fig. 5: for every online node acting as a flooding attacker,
    /// the fraction of online non-neighbors that would accept its
    /// message under receiver-side verification with `cushion`.
    /// Results are averaged per 0.1-wide availability bucket of the
    /// attacker (bucket count = `buckets`).
    pub fn flooding_attack(&self, cushion: f64, buckets: usize) -> AttackSeries {
        self.attack_series(cushion, buckets, AttackKind::Flooding)
    }

    /// Fig. 6: for every online node acting as a legitimate sender, the
    /// fraction of its own (online) AVMEM neighbors that would *reject*
    /// its message under verification with `cushion`.
    pub fn legitimate_rejection(&self, cushion: f64, buckets: usize) -> AttackSeries {
        self.attack_series(cushion, buckets, AttackKind::Rejection)
    }

    fn attack_series(&self, cushion: f64, buckets: usize, kind: AttackKind) -> AttackSeries {
        assert!(buckets > 0, "need at least one bucket");
        assert!(cushion >= 0.0, "cushion must be non-negative");
        let now = self.now();
        let trace = self.trace();
        let n = trace.num_nodes();
        let online: Vec<usize> = trace.online_at(now);
        let predicate = self.predicate();

        // The receiver verifies with ITS OWN oracle view of both
        // availabilities.
        let verifies = |sender: usize, receiver: usize| -> Option<bool> {
            let s_id = NodeId::new(sender as u64);
            let r_id = NodeId::new(receiver as u64);
            let s_av = self.oracle().estimate(r_id, s_id, now)?;
            let r_av = self.oracle().estimate(r_id, r_id, now)?;
            let hash = self.pair_hash(sender, receiver);
            Some(hash <= predicate.threshold(s_av, r_av) + cushion)
        };

        let mut bucket_sums = vec![0.0f64; buckets];
        let mut bucket_counts = vec![0usize; buckets];

        for &sender in &online {
            let s_id = NodeId::new(sender as u64);
            let membership = self.membership(s_id);
            let mut considered = 0usize;
            let mut hits = 0usize;
            match kind {
                AttackKind::Flooding => {
                    // Attack surface: online nodes outside the sender's
                    // lists.
                    for &receiver in &online {
                        if receiver == sender
                            || membership.contains(NodeId::new(receiver as u64))
                        {
                            continue;
                        }
                        if let Some(accepted) = verifies(sender, receiver) {
                            considered += 1;
                            if accepted {
                                hits += 1;
                            }
                        }
                    }
                }
                AttackKind::Rejection => {
                    // Legitimate sends: the sender's own neighbors.
                    for neighbor in membership.neighbors(SliverScope::Both) {
                        let receiver = neighbor.id.raw() as usize;
                        if receiver >= n || !trace.is_online(receiver, now) {
                            continue;
                        }
                        if let Some(accepted) = verifies(sender, receiver) {
                            considered += 1;
                            if !accepted {
                                hits += 1;
                            }
                        }
                    }
                }
            }
            if considered == 0 {
                continue;
            }
            let fraction = hits as f64 / considered as f64;
            let av = trace.long_term_availability(sender).value();
            let b = ((av * buckets as f64).floor() as usize).min(buckets - 1);
            bucket_sums[b] += fraction;
            bucket_counts[b] += 1;
        }

        let values = bucket_sums
            .into_iter()
            .zip(bucket_counts)
            .map(|(sum, count)| {
                if count == 0 {
                    None
                } else {
                    Some(sum / count as f64)
                }
            })
            .collect();
        AttackSeries { values, cushion }
    }

    /// `H(id(x), id(y))` from the precomputed matrix (dense indices).
    pub fn pair_hash(&self, x: usize, y: usize) -> f64 {
        self.hashes.get(x, y)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AttackKind {
    Flooding,
    Rejection,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{OracleChoice, SimConfig};
    use avmem_sim::SimDuration;
    use avmem_trace::OvernetModel;

    fn noisy_sim(seed: u64) -> AvmemSim {
        let trace = OvernetModel::default().hosts(150).days(1).generate(17);
        let mut config = SimConfig::paper_default(seed);
        config.oracle = OracleChoice::paper_noise();
        let mut sim = AvmemSim::new(trace, config);
        sim.warm_up(SimDuration::from_hours(24));
        sim
    }

    #[test]
    fn flooding_acceptance_is_bounded() {
        let sim = noisy_sim(1);
        let series = sim.flooding_attack(0.0, 10);
        // Paper: fewer than 10% of non-neighbors accept; allow slack for
        // the small population.
        assert!(
            series.max_value() < 0.25,
            "flooding acceptance {} too high",
            series.max_value()
        );
    }

    #[test]
    fn cushion_increases_attack_surface_but_modestly() {
        let sim = noisy_sim(2);
        let strict = sim.flooding_attack(0.0, 10);
        let relaxed = sim.flooding_attack(0.1, 10);
        assert!(relaxed.mean_value() >= strict.mean_value());
    }

    #[test]
    fn rejections_happen_under_noise_and_cushion_reduces_them() {
        let sim = noisy_sim(3);
        let strict = sim.legitimate_rejection(0.0, 10);
        let relaxed = sim.legitimate_rejection(0.1, 10);
        assert!(
            strict.mean_value() > 0.0,
            "noise should cause some rejections"
        );
        assert!(
            relaxed.mean_value() < strict.mean_value(),
            "cushion should reduce rejections: {} vs {}",
            relaxed.mean_value(),
            strict.mean_value()
        );
    }

    #[test]
    fn exact_oracle_has_zero_rejections_and_zero_attack_surface() {
        let trace = OvernetModel::default().hosts(100).days(1).generate(19);
        let mut sim = AvmemSim::new(trace, SimConfig::paper_default(4));
        sim.warm_up(SimDuration::from_hours(24));
        let rejection = sim.legitimate_rejection(0.0, 10);
        assert_eq!(rejection.mean_value(), 0.0);
        let flooding = sim.flooding_attack(0.0, 10);
        assert_eq!(flooding.mean_value(), 0.0);
    }

    #[test]
    fn series_helpers() {
        let series = AttackSeries {
            values: vec![None, Some(0.1), Some(0.3)],
            cushion: 0.0,
        };
        assert_eq!(series.max_value(), 0.3);
        assert!((series.mean_value() - 0.2).abs() < 1e-12);
    }
}
