//! Pair-hash storage: lazy row cache with a memory budget.
//!
//! Eq. 1 evaluates `H(id(x), id(y))` for ordered node pairs. A full
//! overlay rebuild touches all `N²` ordered pairs, and SHA-256 dominates
//! the per-pair cost, so caching pays — but a dense `N × N` `f64` matrix
//! is `8·N²` bytes (80 GB at `N = 10⁵`), which caps the population the
//! simulator can hold. [`PairHashes`] therefore stores hashes as *rows*
//! materialized on first touch, in one of three modes chosen by
//! [`PairHashes::with_budget`]:
//!
//! * **cached** (the dense matrix fits the memory budget) — each row `x`
//!   is hashed once, in the thread that first needs it, and kept; later
//!   reads are array lookups. Untouched rows cost nothing, so sparse
//!   access patterns (event-driven maintenance) no longer pay the `O(N²)`
//!   up-front hashing the old eager matrix did.
//! * **LRU** (dense matrix exceeds the budget, but the budget holds at
//!   least one row) — a bounded cache of *hot* rows. Event-driven
//!   discovery and refresh revisit the same source rows every protocol
//!   period, so even a few hundred cached rows absorb most of the
//!   SHA-256 work at populations whose dense matrix would never fit.
//!   Point reads ([`PairHashes::get`]) populate the cache and evict the
//!   least-recently-used row when full; bulk reads ([`PairHashes::row`])
//!   read through on a hit but do *not* populate, so a one-shot rebuild
//!   sweep cannot wash the hot set out. When the hot working set turns
//!   out not to fit at all (admitted rows keep getting evicted before
//!   repaying their `N`-hash build cost), admission is suspended and
//!   misses degrade to per-pair hashing — an over-budget *and*
//!   over-capacity population behaves like direct mode instead of
//!   thrashing (see [`LruRows`]).
//! * **direct** (budget below one row) — nothing is stored; single-pair
//!   reads hash on the fly and bulk consumers fill a caller-provided
//!   scratch row, keeping memory `O(N)` per thread.
//!
//! All modes agree bit-for-bit with [`avmem_util::consistent_hash`].

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use avmem_util::hash::PairKeyHashBuilder;
use avmem_util::parallel::{default_threads, par_chunks_mut};
use avmem_util::{consistent_hash, NodeId};

/// Default memory budget for cached rows: 512 MiB, i.e. dense caching up
/// to ~8 000 nodes; larger populations keep an LRU of hot rows within the
/// same budget.
pub const DEFAULT_HASH_BUDGET: usize = 512 << 20;

/// Pair hashes `H(id(x), id(y))` for the trace population `0..n`.
///
/// # Examples
///
/// ```
/// use avmem::harness::PairHashes;
/// use avmem_util::{consistent_hash, NodeId};
///
/// let hashes = PairHashes::compute(10);
/// assert_eq!(
///     hashes.get(3, 7),
///     consistent_hash(NodeId::new(3), NodeId::new(7))
/// );
///
/// // Above the memory budget the same API hashes on the fly.
/// let direct = PairHashes::with_budget(10, 0);
/// assert_eq!(direct.get(3, 7), hashes.get(3, 7));
/// ```
#[derive(Debug)]
pub struct PairHashes {
    n: usize,
    store: Store,
    counters: StoreCounters,
}

/// Cumulative counters of the shared row store, all modes (relaxed
/// atomics off the hash path's dominant costs — a mutex acquisition in
/// LRU mode, SHA-256 everywhere). Read through
/// [`PairHashes::store_stats`] by the observability surface.
#[derive(Debug, Default)]
struct StoreCounters {
    /// Full rows hashed (`n` SHA-256 evaluations each): cached-mode
    /// materializations, LRU misses, and direct-mode bulk fills.
    rows_built: AtomicU64,
    /// LRU reads (point or bulk) served from the hot set.
    lru_hits: AtomicU64,
    /// LRU reads that had to hash (a row build, or a single pair when
    /// admission is bypassed).
    lru_misses: AtomicU64,
    /// Single-pair on-the-fly hashes (direct mode, or LRU bypass).
    direct_hashes: AtomicU64,
}

/// A point-in-time view of the row store's cumulative counters; see
/// [`PairHashes::store_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PairStoreStats {
    /// Full rows hashed (`n` SHA-256 evaluations each).
    pub rows_built: u64,
    /// LRU reads served from the hot set.
    pub lru_hits: u64,
    /// LRU reads that had to hash.
    pub lru_misses: u64,
    /// Rows evicted from the LRU hot set.
    pub lru_evictions: u64,
    /// Single-pair on-the-fly hashes (direct mode, or LRU bypass).
    pub direct_hashes: u64,
    /// Whether the thrash detector has suspended LRU admission.
    pub bypassed: bool,
    /// Rows resident right now.
    pub cached_rows: usize,
}

#[derive(Debug)]
enum Store {
    /// Rows hashed on first touch and kept. `OnceLock` makes
    /// materialization thread-safe under the parallel rebuild.
    Cached { rows: Vec<OnceLock<Box<[f64]>>> },
    /// Bounded cache of hot rows with least-recently-used eviction.
    Lru {
        state: Mutex<LruRows>,
        capacity: usize,
    },
    /// No storage: every read hashes.
    Direct,
}

/// Consecutive under-amortized evictions before the LRU concludes the
/// working set does not fit and suspends admission (see
/// [`LruRows::insert`]). Bounds the worst-case wasted work at
/// `THRASH_EVICTIONS · N` hashes per run before the cache degrades to
/// direct per-pair hashing.
const THRASH_EVICTIONS: u32 = 64;

/// The mutable interior of the LRU mode: materialized rows, a recency
/// index keyed by access stamp (eviction pops the smallest stamp in
/// `O(log capacity)` — no full scans under the lock), and a thrash
/// detector.
///
/// Materializing a row costs `N` SHA-256 hashes and each later hit
/// saves one, so a row must serve ~`N` hits before eviction just to
/// repay its own build; when the hot working set exceeds the capacity,
/// rows are evicted long before that and the cache does `O(N)` work
/// where direct hashing does `O(1)` per read. A burst of same-row point
/// reads (event-driven discovery touches a few hundred pairs of the
/// source's row per tick) racks up *some* hits without coming anywhere
/// near amortizing, which is why the detector counts consecutive
/// evictions of **under-amortized** victims — fewer hits than the row
/// is long — not merely never-hit ones. At [`THRASH_EVICTIONS`] it
/// stops admitting new rows for the rest of the run (existing entries
/// keep serving hits), so the over-capacity regime degrades to direct
/// hashing instead of thrashing.
#[derive(Debug, Default)]
struct LruRows {
    rows: HashMap<usize, LruEntry>,
    /// Access stamp → row id; stamps are unique (the clock only ever
    /// increments), so this is a total recency order.
    by_stamp: BTreeMap<u64, usize>,
    clock: u64,
    /// Total evictions since construction (observability).
    evictions: u64,
    /// Consecutive evictions whose victim had not repaid its build cost.
    wasted_evictions: u32,
    /// Admission suspended: the working set was observed not to fit.
    bypass: bool,
}

#[derive(Debug)]
struct LruEntry {
    stamp: u64,
    /// Pair hashes this entry has saved since insertion: 1 per point
    /// read, a full row length per bulk read — so an eviction victim
    /// with `hits` below its row length was a net loss (the thrash
    /// signal), and one that served even a single bulk sweep has repaid
    /// its build.
    hits: u64,
    row: Arc<[f64]>,
}

impl LruRows {
    /// Returns the cached row `x`, bumping its recency and crediting
    /// `saved` hashes toward its amortization (1 for a point read,
    /// the row length for a bulk read — see [`LruEntry::hits`]).
    fn touch(&mut self, x: usize, saved: u64) -> Option<Arc<[f64]>> {
        let entry = self.rows.get_mut(&x)?;
        self.clock += 1;
        self.by_stamp.remove(&entry.stamp);
        entry.stamp = self.clock;
        entry.hits += saved;
        self.by_stamp.insert(entry.stamp, x);
        Some(Arc::clone(&entry.row))
    }

    /// Inserts row `x`, evicting the least-recently-used row if the cache
    /// is at `capacity`. A concurrent insert of the same row wins the
    /// race harmlessly — both threads computed identical values.
    fn insert(&mut self, x: usize, row: Arc<[f64]>, capacity: usize) {
        if !self.rows.contains_key(&x) && self.rows.len() >= capacity {
            if let Some((_, coldest)) = self.by_stamp.pop_first() {
                let victim = self.rows.remove(&coldest).expect("index and map agree");
                self.evictions += 1;
                // The build cost `N` hashes; `hits` counts the hashes
                // the entry saved. Victims short of that never
                // amortized — sustained, that means the cache is a net
                // slowdown.
                if victim.hits < victim.row.len() as u64 {
                    self.wasted_evictions += 1;
                    if self.wasted_evictions >= THRASH_EVICTIONS {
                        self.bypass = true;
                    }
                } else {
                    self.wasted_evictions = 0;
                }
            }
        }
        self.clock += 1;
        let stamp = self.clock;
        if let Some(old) = self.rows.insert(x, LruEntry { stamp, hits: 0, row }) {
            self.by_stamp.remove(&old.stamp);
        }
        self.by_stamp.insert(stamp, x);
    }
}

impl PairHashes {
    /// Eagerly hashes all ordered pairs of the population `0..n`
    /// (parallelized across rows). Use for sweeps that share one matrix
    /// across many simulations of the same population.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn compute(n: usize) -> Self {
        let hashes = PairHashes::lazy(n);
        let Store::Cached { rows } = &hashes.store else {
            unreachable!("lazy storage is always cached");
        };
        // Materialize every row up front; rows are independent, so the
        // chunk split cannot change any value.
        let mut row_ids: Vec<usize> = (0..n).collect();
        let counters = &hashes.counters;
        par_chunks_mut(&mut row_ids, 1, default_threads(), |_, chunk| {
            for &x in chunk.iter() {
                rows[x].get_or_init(|| {
                    counters.rows_built.fetch_add(1, Ordering::Relaxed);
                    hash_row(x, n)
                });
            }
        });
        hashes
    }

    /// Lazy row cache: rows are hashed on first touch, nothing up front.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn lazy(n: usize) -> Self {
        assert!(n > 0, "population must be non-empty");
        PairHashes {
            n,
            store: Store::Cached {
                rows: (0..n).map(|_| OnceLock::new()).collect(),
            },
            counters: StoreCounters::default(),
        }
    }

    /// Bounded LRU of hot rows: at most `capacity` rows (`8·n` bytes
    /// each) are kept, point reads populate, bulk reads read through.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `capacity == 0`.
    pub fn lru(n: usize, capacity: usize) -> Self {
        assert!(n > 0, "population must be non-empty");
        assert!(capacity > 0, "LRU capacity must be positive");
        PairHashes {
            n,
            store: Store::Lru {
                state: Mutex::new(LruRows::default()),
                capacity,
            },
            counters: StoreCounters::default(),
        }
    }

    /// Budget-aware constructor: a lazy full row cache when the dense
    /// matrix (`8·n²` bytes) fits `budget_bytes`; otherwise an LRU of the
    /// `budget_bytes / 8·n` hottest rows; direct hashing when the budget
    /// does not even hold one row.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn with_budget(n: usize, budget_bytes: usize) -> Self {
        assert!(n > 0, "population must be non-empty");
        let row_bytes = n * 8;
        let dense_bytes = row_bytes.checked_mul(n);
        if dense_bytes.is_some_and(|b| b <= budget_bytes) {
            PairHashes::lazy(n)
        } else {
            match budget_bytes / row_bytes {
                0 => PairHashes {
                    n,
                    store: Store::Direct,
                    counters: StoreCounters::default(),
                },
                capacity => PairHashes::lru(n, capacity),
            }
        }
    }

    /// Population size.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix is empty (never true for constructed values).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Whether every row is kept once materialized (the full-cache mode;
    /// false for LRU and direct storage).
    pub fn is_cached(&self) -> bool {
        matches!(self.store, Store::Cached { .. })
    }

    /// Whether hot rows are cached with LRU eviction.
    pub fn is_lru(&self) -> bool {
        matches!(self.store, Store::Lru { .. })
    }

    /// Number of rows held right now (always 0 in direct mode; at most
    /// the capacity in LRU mode).
    pub fn cached_rows(&self) -> usize {
        match &self.store {
            Store::Cached { rows } => rows.iter().filter(|r| r.get().is_some()).count(),
            Store::Lru { state, .. } => state.lock().expect("lru poisoned").rows.len(),
            Store::Direct => 0,
        }
    }

    /// `H(id(x), id(y))`. In cached mode this materializes row `x` on
    /// first touch; in LRU mode it promotes row `x` to the hot set (the
    /// read patterns that reach here — discovery and refresh ticks —
    /// revisit the same source row every period, so the row amortizes
    /// within a few ticks).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn get(&self, x: usize, y: usize) -> f64 {
        assert!(x < self.n && y < self.n, "pair index out of range");
        match &self.store {
            Store::Cached { rows } => {
                rows[x].get_or_init(|| {
                    self.counters.rows_built.fetch_add(1, Ordering::Relaxed);
                    hash_row(x, self.n)
                })[y]
            }
            Store::Lru { state, capacity } => {
                {
                    let mut lru = state.lock().expect("lru poisoned");
                    if let Some(row) = lru.touch(x, 1) {
                        self.counters.lru_hits.fetch_add(1, Ordering::Relaxed);
                        return row[y];
                    }
                    self.counters.lru_misses.fetch_add(1, Ordering::Relaxed);
                    if lru.bypass {
                        // The working set does not fit this cache (see
                        // [`LruRows`]): admitting more rows would burn
                        // `O(N)` hashes per miss for nothing, so misses
                        // hash the single pair like direct mode.
                        drop(lru);
                        self.counters.direct_hashes.fetch_add(1, Ordering::Relaxed);
                        return consistent_hash(NodeId::new(x as u64), NodeId::new(y as u64));
                    }
                }
                // Hash outside the lock: SHA-256 over a whole row is the
                // expensive part, and serializing it across workers would
                // undo the parallel maintenance phases.
                self.counters.rows_built.fetch_add(1, Ordering::Relaxed);
                let row: Arc<[f64]> = hash_row(x, self.n).into();
                let value = row[y];
                state
                    .lock()
                    .expect("lru poisoned")
                    .insert(x, row, *capacity);
                value
            }
            Store::Direct => {
                self.counters.direct_hashes.fetch_add(1, Ordering::Relaxed);
                consistent_hash(NodeId::new(x as u64), NodeId::new(y as u64))
            }
        }
    }

    /// The full row `H(id(x), id(·))` for bulk scans. Cached mode returns
    /// the (materialized-on-demand) stored row; LRU mode copies a hot row
    /// into `scratch` on a hit and hashes into `scratch` on a miss
    /// *without* populating the cache (one-shot sweeps such as the
    /// converged rebuild must not evict the rows maintenance keeps hot);
    /// direct mode hashes into `scratch`. Either way a rebuild worker
    /// reuses one `O(N)` buffer for all its rows instead of allocating
    /// per node.
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of range.
    pub fn row<'a>(&'a self, x: usize, scratch: &'a mut Vec<f64>) -> &'a [f64] {
        assert!(x < self.n, "row index out of range");
        match &self.store {
            Store::Cached { rows } => rows[x].get_or_init(|| {
                self.counters.rows_built.fetch_add(1, Ordering::Relaxed);
                hash_row(x, self.n)
            }),
            Store::Lru { state, .. } => {
                scratch.clear();
                // A bulk hit saves a whole row's worth of hashing —
                // credit it as such, so rows serving rebuild sweeps are
                // never mistaken for under-amortized thrash victims.
                let hot = state
                    .lock()
                    .expect("lru poisoned")
                    .touch(x, self.n as u64);
                match hot {
                    Some(row) => {
                        self.counters.lru_hits.fetch_add(1, Ordering::Relaxed);
                        scratch.extend_from_slice(&row);
                    }
                    None => {
                        self.counters.lru_misses.fetch_add(1, Ordering::Relaxed);
                        self.counters.rows_built.fetch_add(1, Ordering::Relaxed);
                        scratch.resize(self.n, 0.0);
                        fill_row(x, scratch);
                    }
                }
                scratch
            }
            Store::Direct => {
                self.counters.rows_built.fetch_add(1, Ordering::Relaxed);
                scratch.clear();
                scratch.resize(self.n, 0.0);
                fill_row(x, scratch);
                scratch
            }
        }
    }

    /// A point-in-time view of the store's cumulative counters (plus the
    /// LRU thrash detector's admission state and the resident row count).
    /// Observation only — reading never perturbs the store.
    pub fn store_stats(&self) -> PairStoreStats {
        let (lru_evictions, bypassed, cached_rows) = match &self.store {
            Store::Cached { rows } => (
                0,
                false,
                rows.iter().filter(|r| r.get().is_some()).count(),
            ),
            Store::Lru { state, .. } => {
                let lru = state.lock().expect("lru poisoned");
                (lru.evictions, lru.bypass, lru.rows.len())
            }
            Store::Direct => (0, false, 0),
        };
        PairStoreStats {
            rows_built: self.counters.rows_built.load(Ordering::Relaxed),
            lru_hits: self.counters.lru_hits.load(Ordering::Relaxed),
            lru_misses: self.counters.lru_misses.load(Ordering::Relaxed),
            lru_evictions,
            direct_hashes: self.counters.direct_hashes.load(Ordering::Relaxed),
            bypassed,
            cached_rows,
        }
    }
}

/// Hit/miss counters of one [`ShardPairCache`], drained by the harness
/// into its finalize statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PairCacheStats {
    /// Point reads answered from the shard-local map.
    pub hits: u64,
    /// Point reads that hashed the pair and cached it locally.
    pub misses: u64,
    /// Point reads delegated to the global dense cache (no lock, no
    /// local copy needed).
    pub delegated: u64,
    /// Times the local map hit capacity and was cleared.
    pub flushes: u64,
}

impl PairCacheStats {
    /// Accumulates another shard's counters into this one.
    pub fn merge(&mut self, other: PairCacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.delegated += other.delegated;
        self.flushes += other.flushes;
    }
}

/// A shard-private point-read cache in front of [`PairHashes`], the
/// lock-free read path of the finalize fast path.
///
/// The sharded finalize loop point-reads `H(x, ·)` for every candidate
/// pair of its owned nodes. In the global cache's LRU mode every such
/// read takes the global `Mutex` ([`PairHashes::get`]) — worker-serializing
/// contention, and at over-capacity populations the admission bypass
/// degrades each read to a fresh SHA-256. This cache gives each shard its
/// own flat `HashMap<packed pair, f64>` owned by the shard scratch, so
/// the per-pair loop touches no shared state at all:
///
/// * dense global store — delegate: the `OnceLock` row lookup is already
///   lock-free and shares materialized rows across shards;
/// * LRU or direct global store — hash the pair once, remember it
///   locally, never touch the global mutex. The discovery/refresh read
///   pattern revisits the same pairs every protocol/refresh period, so
///   the map converges to the shard's working set; at capacity it is
///   flushed wholesale (counted in [`PairCacheStats::flushes`]) — the
///   stable working set makes flushes rare, and values are recomputed
///   identically after one.
///
/// All answers are bit-identical to [`PairHashes::get`]: every mode
/// agrees with [`avmem_util::consistent_hash`].
#[derive(Debug)]
pub struct ShardPairCache {
    map: HashMap<u64, f64, PairKeyHashBuilder>,
    capacity: usize,
    stats: PairCacheStats,
}

impl ShardPairCache {
    /// A cache holding at most `capacity` pair entries (≥ 1).
    pub fn with_capacity(capacity: usize) -> Self {
        ShardPairCache {
            map: HashMap::default(),
            capacity: capacity.max(1),
            stats: PairCacheStats::default(),
        }
    }

    /// `H(id(x), id(y))`, bit-identical to [`PairHashes::get`] but
    /// without ever taking the global lock.
    pub fn get(&mut self, hashes: &PairHashes, x: usize, y: usize) -> f64 {
        if hashes.is_cached() {
            self.stats.delegated += 1;
            return hashes.get(x, y);
        }
        debug_assert!(x < hashes.len() && y < hashes.len(), "pair index out of range");
        debug_assert!(x < (1 << 32) && y < (1 << 32), "packed key needs 32-bit indexes");
        let key = ((x as u64) << 32) | y as u64;
        if let Some(&hash) = self.map.get(&key) {
            self.stats.hits += 1;
            return hash;
        }
        self.stats.misses += 1;
        if self.map.len() >= self.capacity {
            self.map.clear();
            self.stats.flushes += 1;
        }
        let hash = consistent_hash(NodeId::new(x as u64), NodeId::new(y as u64));
        self.map.insert(key, hash);
        hash
    }

    /// Entries currently resident.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Returns and resets the accumulated counters.
    pub fn take_stats(&mut self) -> PairCacheStats {
        std::mem::take(&mut self.stats)
    }
}

fn hash_row(x: usize, n: usize) -> Box<[f64]> {
    let mut row = vec![0.0; n];
    fill_row(x, &mut row);
    row.into_boxed_slice()
}

fn fill_row(x: usize, row: &mut [f64]) {
    let xid = NodeId::new(x as u64);
    for (y, slot) in row.iter_mut().enumerate() {
        *slot = consistent_hash(xid, NodeId::new(y as u64));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_direct_hashing() {
        let hashes = PairHashes::compute(20);
        for x in 0..20 {
            for y in 0..20 {
                assert_eq!(
                    hashes.get(x, y),
                    consistent_hash(NodeId::new(x as u64), NodeId::new(y as u64))
                );
            }
        }
    }

    #[test]
    fn directedness_is_preserved() {
        let hashes = PairHashes::compute(5);
        assert_ne!(hashes.get(1, 2), hashes.get(2, 1));
    }

    #[test]
    fn lazy_materializes_only_touched_rows() {
        let hashes = PairHashes::lazy(16);
        assert_eq!(hashes.cached_rows(), 0);
        let _ = hashes.get(3, 7);
        assert_eq!(hashes.cached_rows(), 1);
        let mut scratch = Vec::new();
        let _ = hashes.row(9, &mut scratch);
        assert_eq!(hashes.cached_rows(), 2);
        assert!(scratch.is_empty(), "cached mode must not use the scratch");
    }

    #[test]
    fn budget_selects_storage_mode() {
        // 12² × 8 = 1152 bytes: the dense matrix just fits.
        assert!(PairHashes::with_budget(12, 1152).is_cached());
        // One byte short of dense, but room for 11 rows: LRU.
        let lru = PairHashes::with_budget(12, 1151);
        assert!(!lru.is_cached());
        assert!(lru.is_lru());
        // Budget below one row (12 × 8 = 96 bytes): direct.
        let direct = PairHashes::with_budget(12, 95);
        assert!(!direct.is_cached());
        assert!(!direct.is_lru());
    }

    #[test]
    fn direct_mode_agrees_with_cached() {
        let direct = PairHashes::with_budget(12, 0);
        let cached = PairHashes::compute(12);
        let mut scratch = Vec::new();
        for x in 0..12 {
            let row = direct.row(x, &mut scratch).to_vec();
            for (y, &h) in row.iter().enumerate() {
                assert_eq!(direct.get(x, y), cached.get(x, y));
                assert_eq!(h, cached.get(x, y));
            }
        }
        assert_eq!(direct.cached_rows(), 0);
    }

    #[test]
    fn lru_mode_agrees_with_cached_under_eviction_pressure() {
        let lru = PairHashes::lru(16, 3);
        let cached = PairHashes::compute(16);
        let mut scratch = Vec::new();
        for pass in 0..2 {
            for x in 0..16 {
                for y in 0..16 {
                    assert_eq!(lru.get(x, y), cached.get(x, y), "pass {pass} ({x},{y})");
                }
                assert_eq!(lru.row(x, &mut scratch), {
                    let mut expect = Vec::new();
                    cached.row(x, &mut expect).to_vec()
                });
            }
        }
        assert!(lru.cached_rows() <= 3);
    }

    #[test]
    fn lru_keeps_hot_rows_and_evicts_the_coldest() {
        let hashes = PairHashes::lru(8, 2);
        let _ = hashes.get(1, 0); // cache {1}
        let _ = hashes.get(2, 0); // cache {1, 2}
        let _ = hashes.get(1, 5); // touch 1: now 2 is coldest
        let _ = hashes.get(3, 0); // evicts 2 → cache {1, 3}
        assert_eq!(hashes.cached_rows(), 2);
        let in_cache = |x: usize| {
            let Store::Lru { state, .. } = &hashes.store else {
                panic!("expected LRU storage");
            };
            state.lock().unwrap().rows.contains_key(&x)
        };
        assert!(in_cache(1), "hot row 1 must survive");
        assert!(in_cache(3), "fresh row 3 must be cached");
        assert!(!in_cache(2), "cold row 2 must be evicted");
    }

    #[test]
    fn lru_bulk_rows_read_through_without_populating() {
        let hashes = PairHashes::lru(10, 4);
        let mut scratch = Vec::new();
        let row: Vec<f64> = hashes.row(6, &mut scratch).to_vec();
        assert_eq!(hashes.cached_rows(), 0, "bulk miss must not populate");
        assert_eq!(row[3], consistent_hash(NodeId::new(6), NodeId::new(3)));
        // A point read populates; the next bulk read hits the hot row.
        let _ = hashes.get(6, 0);
        assert_eq!(hashes.cached_rows(), 1);
        assert_eq!(hashes.row(6, &mut scratch).to_vec(), row);
    }

    #[test]
    fn lru_suspends_admission_when_the_working_set_cannot_fit() {
        // Capacity 2, cyclic scans over 10 rows: every admitted row is
        // evicted before it is ever hit again — the thrash pattern. The
        // detector must suspend admission, values must stay exact, and
        // the cache must stop churning.
        let hashes = PairHashes::lru(10, 2);
        let expect = PairHashes::compute(10);
        for _ in 0..THRASH_EVICTIONS + 8 {
            for x in 0..10 {
                assert_eq!(hashes.get(x, 3), expect.get(x, 3));
            }
        }
        let Store::Lru { state, .. } = &hashes.store else {
            panic!("expected LRU storage");
        };
        let lru = state.lock().unwrap();
        assert!(lru.bypass, "thrash must suspend admission");
        assert_eq!(lru.rows.len(), 2, "resident rows survive the bypass");
        assert_eq!(lru.rows.len(), lru.by_stamp.len(), "index tracks the map");
    }

    #[test]
    fn lru_with_headroom_never_trips_the_thrash_detector() {
        // Working set (3 rows) fits capacity 4: plenty of hits, no
        // zero-hit evictions, admission stays open.
        let hashes = PairHashes::lru(12, 4);
        for _ in 0..200 {
            for x in 0..3 {
                let _ = hashes.get(x, 7);
            }
        }
        let Store::Lru { state, .. } = &hashes.store else {
            panic!("expected LRU storage");
        };
        let lru = state.lock().unwrap();
        assert!(!lru.bypass);
        assert_eq!(lru.wasted_evictions, 0);
    }

    #[test]
    fn lru_bulk_hits_repay_the_build_cost() {
        // A row admitted by a point read and then served to one bulk
        // sweep has saved a full row's worth of hashing: its eviction
        // must not count toward the thrash signal.
        let n = 16;
        let hashes = PairHashes::lru(n, 1);
        let mut scratch = Vec::new();
        let _ = hashes.get(3, 0); // admit row 3 (hits: 0)
        let _ = hashes.row(3, &mut scratch); // bulk hit (hits: n)
        let _ = hashes.get(4, 0); // evicts row 3
        let Store::Lru { state, .. } = &hashes.store else {
            panic!("expected LRU storage");
        };
        let lru = state.lock().unwrap();
        assert_eq!(
            lru.wasted_evictions, 0,
            "a bulk-serving victim amortized its build"
        );
    }

    #[test]
    fn lru_suspends_admission_under_burst_reads_that_never_amortize() {
        // The event-driven discovery pattern at over-capacity
        // populations: each tick point-reads a handful of pairs from one
        // source row, so every admitted row collects a few same-burst
        // hits — far short of the N-hash build cost — and is then
        // evicted. The under-amortization detector must still conclude
        // the cache is a net loss and suspend admission.
        let n = 32;
        let hashes = PairHashes::lru(n, 2);
        let expect = PairHashes::compute(n);
        for round in 0..(THRASH_EVICTIONS as usize + 8) {
            let x = round % n;
            for y in 0..6 {
                assert_eq!(hashes.get(x, y), expect.get(x, y), "({x},{y})");
            }
        }
        let Store::Lru { state, .. } = &hashes.store else {
            panic!("expected LRU storage");
        };
        let lru = state.lock().unwrap();
        assert!(lru.bypass, "burst-hit thrash must suspend admission");
        // Values keep agreeing after the bypass too.
        drop(lru);
        for x in 0..n {
            assert_eq!(hashes.get(x, 9), expect.get(x, 9));
        }
    }

    #[test]
    fn shard_cache_agrees_with_every_store_mode() {
        let expect = PairHashes::compute(14);
        for hashes in [
            PairHashes::lazy(14),
            PairHashes::lru(14, 2),
            PairHashes::with_budget(14, 0),
        ] {
            let mut cache = ShardPairCache::with_capacity(8);
            for pass in 0..2 {
                for x in 0..14 {
                    for y in 0..14 {
                        assert_eq!(
                            cache.get(&hashes, x, y),
                            expect.get(x, y),
                            "pass {pass} ({x},{y})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn shard_cache_delegates_to_dense_and_caches_otherwise() {
        let dense = PairHashes::lazy(10);
        let mut cache = ShardPairCache::with_capacity(64);
        let _ = cache.get(&dense, 1, 2);
        let _ = cache.get(&dense, 1, 2);
        let stats = cache.take_stats();
        assert_eq!(stats.delegated, 2);
        assert_eq!(stats.hits + stats.misses, 0);
        assert!(cache.is_empty(), "dense reads must not populate the map");

        let lru = PairHashes::lru(10, 2);
        let _ = cache.get(&lru, 1, 2); // miss
        let _ = cache.get(&lru, 1, 2); // hit
        let _ = cache.get(&lru, 2, 1); // miss (directed pair)
        let stats = cache.take_stats();
        assert_eq!((stats.hits, stats.misses, stats.delegated), (1, 2, 0));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn shard_cache_flushes_at_capacity_and_stays_exact() {
        let direct = PairHashes::with_budget(12, 0);
        let expect = PairHashes::compute(12);
        let mut cache = ShardPairCache::with_capacity(5);
        for _ in 0..3 {
            for x in 0..12 {
                for y in 0..12 {
                    assert_eq!(cache.get(&direct, x, y), expect.get(x, y));
                }
            }
        }
        let stats = cache.take_stats();
        assert!(stats.flushes > 0, "capacity 5 over 144 pairs must flush");
        assert!(cache.len() <= 5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let hashes = PairHashes::compute(3);
        let _ = hashes.get(3, 0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_lru_panics() {
        let _ = PairHashes::lru(4, 0);
    }
}
