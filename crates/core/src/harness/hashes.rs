//! Precomputed pair-hash matrix.
//!
//! Eq. 1 evaluates `H(id(x), id(y))` for ordered node pairs. A full
//! overlay rebuild touches all `N²` ordered pairs; hashing each pair once
//! into a dense matrix turns every later evaluation into an array read.
//! The values are exactly [`avmem_util::consistent_hash`] outputs, so
//! cached and uncached evaluation agree bit-for-bit.

use avmem_util::{consistent_hash, NodeId};

/// Dense `N × N` matrix of `H(id(x), id(y))` for the trace population
/// `0..n`.
///
/// # Examples
///
/// ```
/// use avmem::harness::PairHashes;
/// use avmem_util::{consistent_hash, NodeId};
///
/// let hashes = PairHashes::compute(10);
/// assert_eq!(
///     hashes.get(3, 7),
///     consistent_hash(NodeId::new(3), NodeId::new(7))
/// );
/// ```
#[derive(Debug, Clone)]
pub struct PairHashes {
    n: usize,
    values: Vec<f64>,
}

impl PairHashes {
    /// Computes hashes for all ordered pairs of the population `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn compute(n: usize) -> Self {
        assert!(n > 0, "population must be non-empty");
        let mut values = vec![0.0; n * n];
        for x in 0..n {
            let xid = NodeId::new(x as u64);
            for y in 0..n {
                values[x * n + y] = consistent_hash(xid, NodeId::new(y as u64));
            }
        }
        PairHashes { n, values }
    }

    /// Population size.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix is empty (never true for constructed values).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// `H(id(x), id(y))` by dense index.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn get(&self, x: usize, y: usize) -> f64 {
        assert!(x < self.n && y < self.n, "pair index out of range");
        self.values[x * self.n + y]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_direct_hashing() {
        let hashes = PairHashes::compute(20);
        for x in 0..20 {
            for y in 0..20 {
                assert_eq!(
                    hashes.get(x, y),
                    consistent_hash(NodeId::new(x as u64), NodeId::new(y as u64))
                );
            }
        }
    }

    #[test]
    fn directedness_is_preserved() {
        let hashes = PairHashes::compute(5);
        assert_ne!(hashes.get(1, 2), hashes.get(2, 1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let hashes = PairHashes::compute(3);
        let _ = hashes.get(3, 0);
    }
}
