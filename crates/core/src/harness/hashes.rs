//! Pair-hash storage: lazy row cache with a memory budget.
//!
//! Eq. 1 evaluates `H(id(x), id(y))` for ordered node pairs. A full
//! overlay rebuild touches all `N²` ordered pairs, and SHA-256 dominates
//! the per-pair cost, so caching pays — but a dense `N × N` `f64` matrix
//! is `8·N²` bytes (80 GB at `N = 10⁵`), which caps the population the
//! simulator can hold. [`PairHashes`] therefore stores hashes as *rows*
//! materialized on first touch:
//!
//! * **cached** (fits the memory budget) — each row `x` is hashed once,
//!   in the thread that first needs it, and kept; later reads are array
//!   lookups. Untouched rows cost nothing, so sparse access patterns
//!   (event-driven maintenance) no longer pay the `O(N²)` up-front
//!   hashing the old eager matrix did.
//! * **direct** (budget exceeded) — nothing is stored; single-pair reads
//!   hash on the fly and bulk consumers ([`PairHashes::row`]) fill a
//!   caller-provided scratch row, keeping memory `O(N)` per thread.
//!
//! Cached and uncached reads agree bit-for-bit with
//! [`avmem_util::consistent_hash`].

use std::sync::OnceLock;

use avmem_util::parallel::{default_threads, par_chunks_mut};
use avmem_util::{consistent_hash, NodeId};

/// Default memory budget for cached rows: 512 MiB, i.e. dense caching up
/// to ~8 000 nodes; larger populations hash directly.
pub const DEFAULT_HASH_BUDGET: usize = 512 << 20;

/// Pair hashes `H(id(x), id(y))` for the trace population `0..n`.
///
/// # Examples
///
/// ```
/// use avmem::harness::PairHashes;
/// use avmem_util::{consistent_hash, NodeId};
///
/// let hashes = PairHashes::compute(10);
/// assert_eq!(
///     hashes.get(3, 7),
///     consistent_hash(NodeId::new(3), NodeId::new(7))
/// );
///
/// // Above the memory budget the same API hashes on the fly.
/// let direct = PairHashes::with_budget(10, 0);
/// assert_eq!(direct.get(3, 7), hashes.get(3, 7));
/// ```
#[derive(Debug)]
pub struct PairHashes {
    n: usize,
    store: Store,
}

#[derive(Debug)]
enum Store {
    /// Rows hashed on first touch and kept. `OnceLock` makes
    /// materialization thread-safe under the parallel rebuild.
    Cached { rows: Vec<OnceLock<Box<[f64]>>> },
    /// No storage: every read hashes.
    Direct,
}

impl PairHashes {
    /// Eagerly hashes all ordered pairs of the population `0..n`
    /// (parallelized across rows). Use for sweeps that share one matrix
    /// across many simulations of the same population.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn compute(n: usize) -> Self {
        let hashes = PairHashes::lazy(n);
        let Store::Cached { rows } = &hashes.store else {
            unreachable!("lazy storage is always cached");
        };
        // Materialize every row up front; rows are independent, so the
        // chunk split cannot change any value.
        let mut row_ids: Vec<usize> = (0..n).collect();
        par_chunks_mut(&mut row_ids, 1, default_threads(), |_, chunk| {
            for &x in chunk.iter() {
                rows[x].get_or_init(|| hash_row(x, n));
            }
        });
        hashes
    }

    /// Lazy row cache: rows are hashed on first touch, nothing up front.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn lazy(n: usize) -> Self {
        assert!(n > 0, "population must be non-empty");
        PairHashes {
            n,
            store: Store::Cached {
                rows: (0..n).map(|_| OnceLock::new()).collect(),
            },
        }
    }

    /// Budget-aware constructor: a lazy row cache when the fully
    /// materialized matrix (`8·n²` bytes) fits `budget_bytes`, direct
    /// hashing otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn with_budget(n: usize, budget_bytes: usize) -> Self {
        assert!(n > 0, "population must be non-empty");
        let dense_bytes = (n * n).checked_mul(8);
        if dense_bytes.is_some_and(|b| b <= budget_bytes) {
            PairHashes::lazy(n)
        } else {
            PairHashes { n, store: Store::Direct }
        }
    }

    /// Population size.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix is empty (never true for constructed values).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Whether rows are cached (vs hashed on every read).
    pub fn is_cached(&self) -> bool {
        matches!(self.store, Store::Cached { .. })
    }

    /// Number of rows materialized so far (always 0 in direct mode).
    pub fn cached_rows(&self) -> usize {
        match &self.store {
            Store::Cached { rows } => rows.iter().filter(|r| r.get().is_some()).count(),
            Store::Direct => 0,
        }
    }

    /// `H(id(x), id(y))`. In cached mode this materializes row `x` on
    /// first touch (the read patterns that reach here — discovery and
    /// refresh ticks — revisit the same source row every period, so the
    /// row amortizes within a few ticks).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn get(&self, x: usize, y: usize) -> f64 {
        assert!(x < self.n && y < self.n, "pair index out of range");
        match &self.store {
            Store::Cached { rows } => rows[x].get_or_init(|| hash_row(x, self.n))[y],
            Store::Direct => consistent_hash(NodeId::new(x as u64), NodeId::new(y as u64)),
        }
    }

    /// The full row `H(id(x), id(·))` for bulk scans. Cached mode returns
    /// the (materialized-on-demand) stored row; direct mode hashes into
    /// `scratch`, so a rebuild worker reuses one `O(N)` buffer for all
    /// its rows instead of allocating per node.
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of range.
    pub fn row<'a>(&'a self, x: usize, scratch: &'a mut Vec<f64>) -> &'a [f64] {
        assert!(x < self.n, "row index out of range");
        match &self.store {
            Store::Cached { rows } => rows[x].get_or_init(|| hash_row(x, self.n)),
            Store::Direct => {
                scratch.clear();
                scratch.resize(self.n, 0.0);
                fill_row(x, scratch);
                scratch
            }
        }
    }
}

fn hash_row(x: usize, n: usize) -> Box<[f64]> {
    let mut row = vec![0.0; n];
    fill_row(x, &mut row);
    row.into_boxed_slice()
}

fn fill_row(x: usize, row: &mut [f64]) {
    let xid = NodeId::new(x as u64);
    for (y, slot) in row.iter_mut().enumerate() {
        *slot = consistent_hash(xid, NodeId::new(y as u64));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_direct_hashing() {
        let hashes = PairHashes::compute(20);
        for x in 0..20 {
            for y in 0..20 {
                assert_eq!(
                    hashes.get(x, y),
                    consistent_hash(NodeId::new(x as u64), NodeId::new(y as u64))
                );
            }
        }
    }

    #[test]
    fn directedness_is_preserved() {
        let hashes = PairHashes::compute(5);
        assert_ne!(hashes.get(1, 2), hashes.get(2, 1));
    }

    #[test]
    fn lazy_materializes_only_touched_rows() {
        let hashes = PairHashes::lazy(16);
        assert_eq!(hashes.cached_rows(), 0);
        let _ = hashes.get(3, 7);
        assert_eq!(hashes.cached_rows(), 1);
        let mut scratch = Vec::new();
        let _ = hashes.row(9, &mut scratch);
        assert_eq!(hashes.cached_rows(), 2);
        assert!(scratch.is_empty(), "cached mode must not use the scratch");
    }

    #[test]
    fn budget_selects_storage_mode() {
        // 12² × 8 = 1152 bytes.
        assert!(PairHashes::with_budget(12, 1152).is_cached());
        assert!(!PairHashes::with_budget(12, 1151).is_cached());
    }

    #[test]
    fn direct_mode_agrees_with_cached() {
        let direct = PairHashes::with_budget(12, 0);
        let cached = PairHashes::compute(12);
        let mut scratch = Vec::new();
        for x in 0..12 {
            let row = direct.row(x, &mut scratch).to_vec();
            for (y, &h) in row.iter().enumerate() {
                assert_eq!(direct.get(x, y), cached.get(x, y));
                assert_eq!(h, cached.get(x, y));
            }
        }
        assert_eq!(direct.cached_rows(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let hashes = PairHashes::compute(3);
        let _ = hashes.get(3, 0);
    }
}
