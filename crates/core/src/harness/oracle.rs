//! The harness's concrete oracle: a closed enum over the fidelity levels
//! so the simulation can both query (`&self`) and advance (`&mut self`,
//! for the ping-based AVMON service) without trait-object gymnastics.

use avmem_avmon::{AvailabilityOracle, AvmonService, NoisyOracle, TraceOracle};
use avmem_sim::SimTime;
use avmem_trace::ChurnTrace;
use avmem_util::{Availability, NodeId};

use crate::harness::config::OracleChoice;

/// The oracle behind a running simulation.
#[derive(Debug, Clone)]
pub enum SimOracle {
    /// Ground truth.
    Exact(TraceOracle),
    /// Ground truth + per-querier noise/staleness.
    Noisy(NoisyOracle<TraceOracle>),
    /// Full ping-based monitoring (boxed: the service's assignment
    /// state dwarfs the instant oracles).
    Avmon(Box<AvmonService>),
}

impl SimOracle {
    /// Builds the oracle selected by `choice`.
    pub fn build(choice: OracleChoice, trace: &ChurnTrace, seed: u64) -> Self {
        match choice {
            OracleChoice::Exact => SimOracle::Exact(TraceOracle::new(trace)),
            OracleChoice::Noisy { error, staleness } => SimOracle::Noisy(NoisyOracle::new(
                TraceOracle::new(trace),
                error,
                staleness,
                seed,
            )),
            OracleChoice::NoisyShared { error, staleness } => SimOracle::Noisy(
                NoisyOracle::shared(TraceOracle::new(trace), error, staleness, seed),
            ),
            OracleChoice::Avmon { config } => {
                SimOracle::Avmon(Box::new(AvmonService::new(trace, config, seed)))
            }
        }
    }

    /// Advances time-dependent oracles (the AVMON service processes all
    /// pings up to `now` in batched parallel slot sweeps over the worker
    /// pool — in ring-assignment mode each slot first replays the
    /// trace's join/leave churn into incremental O(k) reassignment
    /// deltas; the others are time-indexed functions).
    pub fn advance(&mut self, trace: &ChurnTrace, now: SimTime) {
        if let SimOracle::Avmon(service) = self {
            service.step_to(trace, now);
        }
    }

    /// Sets the chunk fan-out of the AVMON service's parallel slot
    /// phases (a no-op for the instant oracles). Purely a performance
    /// knob: estimates are bit-identical for every thread count.
    pub fn set_threads(&mut self, threads: usize) {
        if let SimOracle::Avmon(service) = self {
            service.set_threads(threads);
        }
    }

    /// Sets the shard partitioning of the AVMON service's node-indexed
    /// phases (aggregation, ring-arena sweeps) so monitoring work is
    /// carved along the same ownership map as the maintenance harness (a
    /// no-op for the instant oracles). Purely a performance knob:
    /// estimates are bit-identical for every shard count.
    pub fn set_shards(&mut self, shards: usize) {
        if let SimOracle::Avmon(service) = self {
            service.set_shards(shards);
        }
    }

    /// Attaches a metrics registry to the AVMON service (slot-advance
    /// cost counters; a no-op for the instant oracles). Observation
    /// only: estimates are unchanged.
    pub fn set_metrics(&mut self, registry: &avmem_metrics::Registry) {
        if let SimOracle::Avmon(service) = self {
            service.set_metrics(registry);
        }
    }

    /// A short label for the configured estimation strategy, used by
    /// reports that compare per-strategy accuracy (e.g. ring vs
    /// all-pairs MAE).
    pub fn strategy_label(&self) -> &'static str {
        match self {
            SimOracle::Exact(_) => "exact",
            SimOracle::Noisy(o) => {
                if o.is_per_querier() {
                    "noisy"
                } else {
                    "noisy-shared"
                }
            }
            SimOracle::Avmon(o) => {
                if o.is_ring_assignment() {
                    "avmon-ring"
                } else {
                    "avmon-all-pairs"
                }
            }
        }
    }

    /// Whether every querier sees the same estimate for a given target
    /// at a given time. True for ground truth, shared-noise aggregates,
    /// and AVMON's aggregated answers; false for the per-querier noise
    /// model (divergent caches). Querier-independent oracles let the
    /// converged rebuild share one availability snapshot — and one
    /// sorted candidate index — across the whole population.
    pub fn querier_independent(&self) -> bool {
        match self {
            SimOracle::Exact(_) | SimOracle::Avmon(_) => true,
            SimOracle::Noisy(o) => !o.is_per_querier(),
        }
    }

    /// A generation counter that advances whenever estimates *may*
    /// change, or `None` when no such counter exists (per-querier noise:
    /// answers additionally depend on who asks, so a shared epoch would
    /// under-approximate change).
    ///
    /// Within one epoch, `estimate(q, y, now)` is a pure function of
    /// `(q, y)` — the contract the finalize fast path relies on to memoize
    /// thresholds and skip re-classification. Ground truth never changes
    /// (epoch 0 forever); shared noise re-draws once per staleness period;
    /// AVMON aggregates mutate only when a trace slot is processed.
    pub fn epoch(&self, now: SimTime) -> Option<u64> {
        match self {
            SimOracle::Exact(_) => Some(0),
            SimOracle::Noisy(o) => (!o.is_per_querier()).then(|| o.epoch_at(now)),
            SimOracle::Avmon(o) => Some(o.slots_processed() as u64),
        }
    }
}

impl AvailabilityOracle for SimOracle {
    fn estimate(&self, querier: NodeId, target: NodeId, now: SimTime) -> Option<Availability> {
        match self {
            SimOracle::Exact(o) => o.estimate(querier, target, now),
            SimOracle::Noisy(o) => o.estimate(querier, target, now),
            SimOracle::Avmon(o) => o.estimate(querier, target, now),
        }
    }

    fn estimate_batch(
        &self,
        querier: NodeId,
        targets: &[NodeId],
        now: SimTime,
        out: &mut Vec<Option<Availability>>,
    ) {
        // One enum dispatch per candidate list instead of one per pair.
        match self {
            SimOracle::Exact(o) => o.estimate_batch(querier, targets, now, out),
            SimOracle::Noisy(o) => o.estimate_batch(querier, targets, now, out),
            SimOracle::Avmon(o) => o.estimate_batch(querier, targets, now, out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avmem_avmon::AvmonConfig;
    use avmem_sim::SimDuration;
    use avmem_trace::OvernetModel;

    fn trace() -> ChurnTrace {
        OvernetModel::default().hosts(40).days(1).generate(2)
    }

    #[test]
    fn exact_oracle_matches_truth() {
        let t = trace();
        let oracle = SimOracle::build(OracleChoice::Exact, &t, 1);
        let est = oracle
            .estimate(NodeId::new(0), NodeId::new(5), SimTime::ZERO)
            .unwrap();
        assert_eq!(est, t.long_term_availability(5));
    }

    #[test]
    fn noisy_oracle_perturbs_within_amplitude() {
        let t = trace();
        let oracle = SimOracle::build(
            OracleChoice::Noisy {
                error: 0.02,
                staleness: SimDuration::from_mins(20),
            },
            &t,
            1,
        );
        let est = oracle
            .estimate(NodeId::new(0), NodeId::new(5), SimTime::ZERO)
            .unwrap();
        let diff = (est.value() - t.long_term_availability(5).value()).abs();
        assert!(diff <= 0.02 + 1e-12);
    }

    #[test]
    fn avmon_oracle_needs_advancing() {
        let t = trace();
        let mut oracle = SimOracle::build(
            OracleChoice::Avmon {
                config: AvmonConfig::default(),
            },
            &t,
            1,
        );
        assert!(oracle
            .estimate(NodeId::new(0), NodeId::new(5), SimTime::ZERO)
            .is_none());
        oracle.advance(&t, SimTime::ZERO + SimDuration::from_hours(12));
        let known = (0..t.num_nodes())
            .filter(|&i| {
                oracle
                    .estimate(NodeId::new(0), t.node_id(i), SimTime::ZERO)
                    .is_some()
            })
            .count();
        assert!(known > 0);
    }
}
