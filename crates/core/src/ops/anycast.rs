//! {Threshold, Range}-Anycast (§3.2-I of the paper).
//!
//! An anycast routes a message from an arbitrary initiator to *some* node
//! inside the availability target. Each hop decrements a TTL; a node
//! whose (believed) availability lies in the target delivers. Three
//! forwarding policies:
//!
//! * **Greedy** — forward to the neighbor inside the target, else to the
//!   neighbor whose cached availability is closest to the target. No
//!   acknowledgements: a hop to an offline node loses the message.
//! * **Retried greedy** — each hop must be acknowledged; on silence the
//!   sender decrements a `retry` budget and tries its next-best neighbor,
//!   until the budget or the candidate list runs out.
//! * **Simulated annealing** — while traversing the neighbor list, pick a
//!   candidate *randomly* with probability `p = e^(−Δ/ttl)` (Δ = distance
//!   from the candidate's availability to the target edge, ttl = hops
//!   remaining); fall back to greedy. Random early, greedy late.
//!
//! Each policy runs in HS-only / VS-only / HS+VS flavors — nine
//! algorithms total, exactly the §3.2 matrix.

use std::collections::HashSet;

use avmem_sim::{Network, SimDuration};
use avmem_util::{NodeId, Rng};
use serde::{Deserialize, Serialize};

use crate::membership::{Neighbor, SliverScope};
use crate::ops::target::AvailabilityTarget;
use crate::ops::world::OverlayWorld;

/// Forwarding policy for anycast.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ForwardPolicy {
    /// Greedy forwarding, no acknowledgements.
    Greedy,
    /// Greedy with acknowledgement + retry of next-best candidates.
    RetriedGreedy {
        /// The initiator's retry budget `k` (carried in the message).
        retries: u32,
    },
    /// Simulated-annealing forwarding.
    SimulatedAnnealing,
}

/// Configuration of one anycast.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnycastConfig {
    /// Forwarding policy.
    pub policy: ForwardPolicy,
    /// Which sliver lists forwarding may use.
    pub scope: SliverScope,
    /// Initial time-to-live in hops (the paper's experiments use 6).
    pub ttl: u32,
}

impl AnycastConfig {
    /// The paper's default: greedy over HS+VS with TTL 6.
    pub fn paper_default() -> Self {
        AnycastConfig {
            policy: ForwardPolicy::Greedy,
            scope: SliverScope::Both,
            ttl: 6,
        }
    }
}

/// Why an anycast failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AnycastDrop {
    /// TTL reached zero before entering the target.
    TtlExpired,
    /// Retried-greedy exhausted its retry budget.
    RetryExpired,
    /// The current holder had no usable (untried) neighbor.
    NoCandidates,
    /// Plain greedy forwarded to an offline node (no ack, message lost).
    NextHopOffline,
}

/// Result of one anycast.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnycastOutcome {
    /// The delivering node, if any.
    pub delivered_to: Option<NodeId>,
    /// Whether the delivering node's *true* availability is inside the
    /// target (a node can wrongly believe itself in range).
    pub delivered_in_range_truth: bool,
    /// Failure reason when not delivered.
    pub drop_reason: Option<AnycastDrop>,
    /// Number of successful hops taken.
    pub hops: u32,
    /// End-to-end latency (including timeouts burned on failed attempts).
    pub latency: SimDuration,
    /// Total messages sent (including failed attempts and acks are not
    /// counted separately).
    pub messages: u32,
    /// The successful path, initiator first.
    pub path: Vec<NodeId>,
}

impl AnycastOutcome {
    /// Whether the anycast reached the target.
    pub fn is_delivered(&self) -> bool {
        self.delivered_to.is_some()
    }
}

/// Runs one anycast over the world. `rng` drives annealing decisions,
/// `net` draws per-hop latencies.
///
/// The initiator itself counts: if its believed availability is already
/// in the target, the anycast delivers in zero hops.
pub fn run_anycast<W, R>(
    world: &W,
    net: &mut Network,
    rng: &mut R,
    initiator: NodeId,
    target: AvailabilityTarget,
    config: AnycastConfig,
) -> AnycastOutcome
where
    W: OverlayWorld + ?Sized,
    R: Rng,
{
    let mut current = initiator;
    let mut ttl = config.ttl;
    let mut retry_budget = match config.policy {
        ForwardPolicy::RetriedGreedy { retries } => retries,
        _ => 0,
    };
    let mut visited: HashSet<NodeId> = HashSet::new();
    visited.insert(initiator);
    let mut outcome = AnycastOutcome {
        delivered_to: None,
        delivered_in_range_truth: false,
        drop_reason: None,
        hops: 0,
        latency: SimDuration::ZERO,
        messages: 0,
        path: vec![initiator],
    };

    loop {
        // Delivery check: the holder consults its own believed availability.
        if target.contains(world.believed_availability(current)) {
            outcome.delivered_to = Some(current);
            outcome.delivered_in_range_truth = target.contains(world.true_availability(current));
            return outcome;
        }
        if ttl == 0 {
            outcome.drop_reason = Some(AnycastDrop::TtlExpired);
            return outcome;
        }

        // Candidates: untried neighbors, ranked by the greedy metric over
        // *cached* availabilities. Annealing traverses this same sorted
        // order (see `anneal_choice`).
        let mut candidates: Vec<Neighbor> = world
            .neighbors(current, config.scope)
            .into_iter()
            .filter(|n| !visited.contains(&n.id))
            .collect();
        if candidates.is_empty() {
            outcome.drop_reason = Some(AnycastDrop::NoCandidates);
            return outcome;
        }
        sort_by_distance(&mut candidates, target);

        let chosen = match config.policy {
            ForwardPolicy::Greedy | ForwardPolicy::RetriedGreedy { .. } => 0,
            ForwardPolicy::SimulatedAnnealing => {
                anneal_choice(&candidates, target, ttl, rng).unwrap_or(0)
            }
        };
        // Move the chosen candidate to the front so the retry loop walks
        // the remainder in greedy order.
        candidates.swap(0, chosen);

        let mut forwarded = false;
        for (attempt, candidate) in candidates.iter().enumerate() {
            outcome.messages += 1;
            outcome.latency = outcome.latency + net.hop_latency();
            if world.is_online(candidate.id) {
                visited.insert(candidate.id);
                outcome.path.push(candidate.id);
                outcome.hops += 1;
                current = candidate.id;
                ttl -= 1;
                forwarded = true;
                break;
            }
            // Candidate offline.
            match config.policy {
                ForwardPolicy::Greedy | ForwardPolicy::SimulatedAnnealing => {
                    // No acknowledgements: the message is simply lost.
                    outcome.drop_reason = Some(AnycastDrop::NextHopOffline);
                    return outcome;
                }
                ForwardPolicy::RetriedGreedy { .. } => {
                    // Ack timeout burned (modelled as one extra latency draw).
                    outcome.latency = outcome.latency + net.hop_latency();
                    // "The retrying stops when either retry reaches 0, or
                    // there are no more next-best nodes left" (§3.2).
                    retry_budget = retry_budget.saturating_sub(1);
                    if retry_budget == 0 {
                        outcome.drop_reason = Some(AnycastDrop::RetryExpired);
                        return outcome;
                    }
                    if attempt + 1 == candidates.len() {
                        outcome.drop_reason = Some(AnycastDrop::NoCandidates);
                        return outcome;
                    }
                }
            }
        }
        if !forwarded {
            // Retried-greedy ran out of candidates with budget left.
            outcome.drop_reason = Some(AnycastDrop::NoCandidates);
            return outcome;
        }
    }
}

/// Stable sort of candidates by the greedy metric: distance of cached
/// availability to the target, ties broken toward *higher* cached
/// availability. The paper leaves the within-range tie unspecified
/// ("forwards … to an AVMEM neighbor that lies inside R"); preferring
/// the most-available candidate minimizes the chance of forwarding to an
/// offline node, which matters because plain greedy has no retry.
fn sort_by_distance(candidates: &mut [Neighbor], target: AvailabilityTarget) {
    candidates.sort_by(|a, b| {
        target
            .distance(a.cached_availability)
            .partial_cmp(&target.distance(b.cached_availability))
            .expect("distances are never NaN")
            .then(
                b.cached_availability
                    .partial_cmp(&a.cached_availability)
                    .expect("availabilities are never NaN"),
            )
    });
}

/// Scale applied to the annealing distance `Δ` before computing
/// `p = e^(−Δ·SCALE / ttl)`.
///
/// The paper states `p = e^(−Δ/ttl)` with Δ "the Euclidean distance
/// between the edge of R and the availability of the current next-hop
/// under consideration". Read with Δ on the raw `[0, 1]` availability
/// axis, `p` stays near 1 for *every* candidate early on (e.g. Δ = 0.35,
/// ttl = 6 ⇒ p = 0.94) and the anycast degenerates into a random walk —
/// contradicting the paper's own Fig. 7, where simulated annealing
/// delivers within ~1 hop like greedy. Reading Δ in availability
/// *percentage points* (i.e. scaling by 100) reproduces the published
/// behaviour: near-range candidates keep meaningful acceptance
/// probability while far candidates are effectively skipped, with the
/// greedy fallback taking over as the TTL drains.
pub const ANNEALING_DELTA_SCALE: f64 = 100.0;

/// Simulated-annealing choice: traverse the candidate list; accept
/// candidate `i` with probability `e^(−Δᵢ·scale / ttl)`. Returns `None`
/// to fall back to the greedy choice (index 0 of the distance-sorted
/// list).
///
/// Traversal follows the greedy (distance-sorted) order. The paper
/// leaves the traversal order unspecified ("as the list of neighbors is
/// traversed"); sorted order is the reading consistent with Fig. 7,
/// where annealing delivers within ~1 hop like greedy whenever an
/// in-range candidate (Δ = 0, p = 1) exists. The randomness then
/// manifests as probabilistic *skipping* past the nearest candidates —
/// strongest early (large ttl), vanishing as the TTL drains.
fn anneal_choice<R: Rng>(
    candidates: &[Neighbor],
    target: AvailabilityTarget,
    ttl: u32,
    rng: &mut R,
) -> Option<usize> {
    for (i, candidate) in candidates.iter().enumerate() {
        let delta = (candidate.cached_availability.value()
            - target.nearest_edge(candidate.cached_availability))
        .abs();
        let p = (-delta * ANNEALING_DELTA_SCALE / ttl as f64).exp();
        if rng.chance(p) {
            return Some(i);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use avmem_sim::LatencyModel;
    use avmem_util::Xoshiro256;

    use crate::ops::world::mock::MockWorld;

    fn net() -> Network {
        Network::new(LatencyModel::Constant { millis: 50 }, 0.0, 1)
    }

    fn rng() -> Xoshiro256 {
        Xoshiro256::new(7)
    }

    /// A chain world: 0 (av .5) → 1 (av .6) → 2 (av .7) → 3 (av .9).
    fn chain() -> MockWorld {
        let mut w = MockWorld::default();
        w.add(0, 0.5);
        w.add(1, 0.6);
        w.add(2, 0.7);
        w.add(3, 0.9);
        w.vs_edge(0, 1);
        w.vs_edge(1, 2);
        w.vs_edge(2, 3);
        w
    }

    #[test]
    fn initiator_in_range_delivers_immediately() {
        let w = chain();
        let outcome = run_anycast(
            &w,
            &mut net(),
            &mut rng(),
            NodeId::new(0),
            AvailabilityTarget::range(0.4, 0.6),
            AnycastConfig::paper_default(),
        );
        assert_eq!(outcome.delivered_to, Some(NodeId::new(0)));
        assert_eq!(outcome.hops, 0);
        assert_eq!(outcome.messages, 0);
        assert_eq!(outcome.latency, SimDuration::ZERO);
    }

    #[test]
    fn greedy_walks_the_chain() {
        let w = chain();
        let outcome = run_anycast(
            &w,
            &mut net(),
            &mut rng(),
            NodeId::new(0),
            AvailabilityTarget::range(0.85, 0.95),
            AnycastConfig::paper_default(),
        );
        assert_eq!(outcome.delivered_to, Some(NodeId::new(3)));
        assert_eq!(outcome.hops, 3);
        assert_eq!(outcome.path, vec![NodeId::new(0), NodeId::new(1), NodeId::new(2), NodeId::new(3)]);
        assert_eq!(outcome.latency, SimDuration::from_millis(150));
        assert!(outcome.delivered_in_range_truth);
    }

    #[test]
    fn ttl_expiry_stops_the_walk() {
        let w = chain();
        let outcome = run_anycast(
            &w,
            &mut net(),
            &mut rng(),
            NodeId::new(0),
            AvailabilityTarget::range(0.85, 0.95),
            AnycastConfig {
                ttl: 2,
                ..AnycastConfig::paper_default()
            },
        );
        assert!(!outcome.is_delivered());
        assert_eq!(outcome.drop_reason, Some(AnycastDrop::TtlExpired));
        assert_eq!(outcome.hops, 2);
    }

    #[test]
    fn greedy_prefers_in_range_neighbor() {
        let mut w = MockWorld::default();
        w.add(0, 0.5);
        w.add(1, 0.7); // closer to target edge but outside
        w.add(2, 0.9); // inside target
        w.vs_edge(0, 1);
        w.vs_edge(0, 2);
        let outcome = run_anycast(
            &w,
            &mut net(),
            &mut rng(),
            NodeId::new(0),
            AvailabilityTarget::range(0.85, 0.95),
            AnycastConfig::paper_default(),
        );
        assert_eq!(outcome.delivered_to, Some(NodeId::new(2)));
        assert_eq!(outcome.hops, 1);
    }

    #[test]
    fn greedy_loses_message_to_offline_hop() {
        let mut w = chain();
        w.set_offline(1);
        let outcome = run_anycast(
            &w,
            &mut net(),
            &mut rng(),
            NodeId::new(0),
            AvailabilityTarget::range(0.85, 0.95),
            AnycastConfig::paper_default(),
        );
        assert!(!outcome.is_delivered());
        assert_eq!(outcome.drop_reason, Some(AnycastDrop::NextHopOffline));
        assert_eq!(outcome.messages, 1);
    }

    #[test]
    fn retried_greedy_falls_over_to_next_best() {
        let mut w = MockWorld::default();
        w.add(0, 0.5);
        w.add(1, 0.9); // best but offline
        w.add(2, 0.88); // second best, online, in range
        w.vs_edge(0, 1);
        w.vs_edge(0, 2);
        w.set_offline(1);
        let outcome = run_anycast(
            &w,
            &mut net(),
            &mut rng(),
            NodeId::new(0),
            AvailabilityTarget::range(0.85, 0.95),
            AnycastConfig {
                policy: ForwardPolicy::RetriedGreedy { retries: 2 },
                ..AnycastConfig::paper_default()
            },
        );
        assert_eq!(outcome.delivered_to, Some(NodeId::new(2)));
        // One failed attempt (send + timeout) + one successful hop.
        assert_eq!(outcome.messages, 2);
        assert_eq!(outcome.latency, SimDuration::from_millis(150));
    }

    #[test]
    fn retried_greedy_exhausts_budget() {
        let mut w = MockWorld::default();
        w.add(0, 0.5);
        for i in 1..=4 {
            w.add(i, 0.9);
            w.vs_edge(0, i);
            w.set_offline(i);
        }
        let outcome = run_anycast(
            &w,
            &mut net(),
            &mut rng(),
            NodeId::new(0),
            AvailabilityTarget::range(0.85, 0.95),
            AnycastConfig {
                policy: ForwardPolicy::RetriedGreedy { retries: 2 },
                ..AnycastConfig::paper_default()
            },
        );
        assert!(!outcome.is_delivered());
        assert_eq!(outcome.drop_reason, Some(AnycastDrop::RetryExpired));
        // retry=2 means two failed attempts are tolerated before the drop.
        assert_eq!(outcome.messages, 2);
    }

    #[test]
    fn retried_greedy_runs_out_of_candidates() {
        let mut w = MockWorld::default();
        w.add(0, 0.5);
        w.add(1, 0.9);
        w.vs_edge(0, 1);
        w.set_offline(1);
        let outcome = run_anycast(
            &w,
            &mut net(),
            &mut rng(),
            NodeId::new(0),
            AvailabilityTarget::range(0.85, 0.95),
            AnycastConfig {
                policy: ForwardPolicy::RetriedGreedy { retries: 8 },
                ..AnycastConfig::paper_default()
            },
        );
        assert!(!outcome.is_delivered());
        assert_eq!(outcome.drop_reason, Some(AnycastDrop::NoCandidates));
    }

    #[test]
    fn no_neighbors_drops_immediately() {
        let mut w = MockWorld::default();
        w.add(0, 0.5);
        let outcome = run_anycast(
            &w,
            &mut net(),
            &mut rng(),
            NodeId::new(0),
            AvailabilityTarget::range(0.85, 0.95),
            AnycastConfig::paper_default(),
        );
        assert_eq!(outcome.drop_reason, Some(AnycastDrop::NoCandidates));
        assert_eq!(outcome.messages, 0);
    }

    #[test]
    fn scope_restricts_usable_edges() {
        let mut w = MockWorld::default();
        w.add(0, 0.5);
        w.add(1, 0.9);
        w.vs_edge(0, 1); // vertical edge only
        let outcome = run_anycast(
            &w,
            &mut net(),
            &mut rng(),
            NodeId::new(0),
            AvailabilityTarget::range(0.85, 0.95),
            AnycastConfig {
                scope: SliverScope::HsOnly,
                ..AnycastConfig::paper_default()
            },
        );
        assert_eq!(outcome.drop_reason, Some(AnycastDrop::NoCandidates));
    }

    #[test]
    fn walk_never_revisits_nodes() {
        // 0 ↔ 1 edges both ways; without the visited set greedy would
        // bounce between them until TTL expiry. With it, the walk stops.
        let mut w = MockWorld::default();
        w.add(0, 0.5);
        w.add(1, 0.6);
        w.vs_edge(0, 1);
        w.vs_edge(1, 0);
        let outcome = run_anycast(
            &w,
            &mut net(),
            &mut rng(),
            NodeId::new(0),
            AvailabilityTarget::range(0.85, 0.95),
            AnycastConfig::paper_default(),
        );
        assert!(!outcome.is_delivered());
        assert_eq!(outcome.drop_reason, Some(AnycastDrop::NoCandidates));
        assert_eq!(outcome.hops, 1);
    }

    #[test]
    fn annealing_delivers_on_chain() {
        let w = chain();
        let mut delivered = 0;
        for seed in 0..20 {
            let mut r = Xoshiro256::new(seed);
            let outcome = run_anycast(
                &w,
                &mut net(),
                &mut r,
                NodeId::new(0),
                AvailabilityTarget::range(0.85, 0.95),
                AnycastConfig {
                    policy: ForwardPolicy::SimulatedAnnealing,
                    ttl: 6,
                    scope: SliverScope::Both,
                },
            );
            if outcome.is_delivered() {
                delivered += 1;
            }
        }
        // The chain has a single path; annealing must still find it.
        assert_eq!(delivered, 20);
    }

    #[test]
    fn annealing_explores_randomly_early() {
        // A star: center 0 with neighbors clustered just below the
        // target. Early (high ttl) the acceptance probabilities
        // p = e^(−Δ·scale/ttl) are meaningful but below one, so the
        // first hop varies across runs — unlike greedy, which would
        // always pick the closest.
        let mut w = MockWorld::default();
        w.add(0, 0.1);
        for i in 1..=10 {
            w.add(i, 0.85 + 0.004 * i as f64); // 0.854 … 0.89, Δ ≤ 0.046
            w.vs_edge(0, i);
        }
        let mut first_hops = std::collections::HashSet::new();
        for seed in 0..100 {
            let mut r = Xoshiro256::new(seed);
            let outcome = run_anycast(
                &w,
                &mut net(),
                &mut r,
                NodeId::new(0),
                AvailabilityTarget::range(0.9, 0.95),
                AnycastConfig {
                    policy: ForwardPolicy::SimulatedAnnealing,
                    ttl: 6,
                    scope: SliverScope::Both,
                },
            );
            if let Some(node) = outcome.path.get(1) {
                first_hops.insert(*node);
            }
        }
        assert!(
            first_hops.len() > 1,
            "annealing always chose the same first hop"
        );
    }

    #[test]
    fn annealing_skips_far_candidates() {
        // Far candidates (large Δ) are essentially never chosen at low
        // ttl; the greedy fallback picks the closest instead.
        let mut w = MockWorld::default();
        w.add(0, 0.1);
        w.add(1, 0.3); // far from target
        w.add(2, 0.89); // near target
        w.vs_edge(0, 1);
        w.vs_edge(0, 2);
        let mut near_first = 0;
        for seed in 0..50 {
            let mut r = Xoshiro256::new(seed);
            let outcome = run_anycast(
                &w,
                &mut net(),
                &mut r,
                NodeId::new(0),
                AvailabilityTarget::range(0.9, 0.95),
                AnycastConfig {
                    policy: ForwardPolicy::SimulatedAnnealing,
                    ttl: 2,
                    scope: SliverScope::Both,
                },
            );
            if outcome.path.get(1) == Some(&NodeId::new(2)) {
                near_first += 1;
            }
        }
        assert!(
            near_first > 40,
            "low-ttl annealing should be near-greedy ({near_first}/50)"
        );
    }
}
