//! Availability targets for management operations.
//!
//! The paper's four operations address either a *range* `[b, b+δ] ⊆ [0,1]`
//! or a *threshold* `> b` (§1). [`AvailabilityTarget`] unifies the two: a
//! threshold is "a range stretching from the threshold to 1.0" (§3.2).

use avmem_util::Availability;
use serde::{Deserialize, Serialize};

/// The availability region an anycast/multicast addresses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AvailabilityTarget {
    /// All nodes with availability in `[lo, hi]`.
    Range {
        /// Inclusive lower bound.
        lo: f64,
        /// Inclusive upper bound.
        hi: f64,
    },
    /// All nodes with availability strictly greater than `min`
    /// (threshold-anycast / threshold-multicast).
    Threshold {
        /// The exclusive lower bound `b`.
        min: f64,
    },
}

impl AvailabilityTarget {
    /// Creates a range target.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ lo ≤ hi ≤ 1`.
    pub fn range(lo: f64, hi: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi) && lo <= hi,
            "range must satisfy 0 ≤ lo ≤ hi ≤ 1"
        );
        AvailabilityTarget::Range { lo, hi }
    }

    /// Creates a threshold target (`availability > min`).
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ min < 1`.
    pub fn threshold(min: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&min),
            "threshold must satisfy 0 ≤ min < 1"
        );
        AvailabilityTarget::Threshold { min }
    }

    /// Whether `av` lies inside the target region.
    pub fn contains(&self, av: Availability) -> bool {
        match *self {
            AvailabilityTarget::Range { lo, hi } => (lo..=hi).contains(&av.value()),
            AvailabilityTarget::Threshold { min } => av.value() > min,
        }
    }

    /// Distance from `av` to the region (zero if inside) — the greedy
    /// forwarding metric ("distance to range target R", §3.2).
    pub fn distance(&self, av: Availability) -> f64 {
        match *self {
            AvailabilityTarget::Range { lo, hi } => {
                if av.value() < lo {
                    lo - av.value()
                } else if av.value() > hi {
                    av.value() - hi
                } else {
                    0.0
                }
            }
            AvailabilityTarget::Threshold { min } => (min - av.value()).max(0.0),
        }
    }

    /// The nearest edge of the region as seen from `av` — the simulated
    /// annealing rule's `Δ` is measured to this edge.
    pub fn nearest_edge(&self, av: Availability) -> f64 {
        match *self {
            AvailabilityTarget::Range { lo, hi } => {
                if av.value() < lo {
                    lo
                } else if av.value() > hi {
                    hi
                } else {
                    av.value()
                }
            }
            AvailabilityTarget::Threshold { min } => {
                if av.value() > min {
                    av.value()
                } else {
                    min
                }
            }
        }
    }
}

impl std::fmt::Display for AvailabilityTarget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            AvailabilityTarget::Range { lo, hi } => write!(f, "[{lo}, {hi}]"),
            AvailabilityTarget::Threshold { min } => write!(f, "av > {min}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn av(v: f64) -> Availability {
        Availability::saturating(v)
    }

    #[test]
    fn range_containment() {
        let t = AvailabilityTarget::range(0.2, 0.3);
        assert!(t.contains(av(0.2)));
        assert!(t.contains(av(0.25)));
        assert!(t.contains(av(0.3)));
        assert!(!t.contains(av(0.19)));
        assert!(!t.contains(av(0.31)));
    }

    #[test]
    fn threshold_is_exclusive_at_bound() {
        let t = AvailabilityTarget::threshold(0.9);
        assert!(!t.contains(av(0.9)));
        assert!(t.contains(av(0.90001)));
        assert!(!t.contains(av(0.5)));
    }

    #[test]
    fn distance_is_zero_inside() {
        let t = AvailabilityTarget::range(0.4, 0.6);
        assert_eq!(t.distance(av(0.5)), 0.0);
        assert!((t.distance(av(0.3)) - 0.1).abs() < 1e-12);
        assert!((t.distance(av(0.9)) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn threshold_distance_decreases_upward() {
        let t = AvailabilityTarget::threshold(0.5);
        assert!(t.distance(av(0.1)) > t.distance(av(0.4)));
        assert_eq!(t.distance(av(0.8)), 0.0);
    }

    #[test]
    fn nearest_edge_points_at_region() {
        let t = AvailabilityTarget::range(0.4, 0.6);
        assert_eq!(t.nearest_edge(av(0.1)), 0.4);
        assert_eq!(t.nearest_edge(av(0.9)), 0.6);
        assert_eq!(t.nearest_edge(av(0.5)), 0.5);
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(AvailabilityTarget::range(0.2, 0.3).to_string(), "[0.2, 0.3]");
        assert_eq!(AvailabilityTarget::threshold(0.9).to_string(), "av > 0.9");
    }

    #[test]
    #[should_panic(expected = "range must satisfy")]
    fn inverted_range_panics() {
        let _ = AvailabilityTarget::range(0.5, 0.4);
    }

    #[test]
    #[should_panic(expected = "threshold must satisfy")]
    fn threshold_of_one_panics() {
        let _ = AvailabilityTarget::threshold(1.0);
    }
}
