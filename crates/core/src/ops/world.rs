//! The world interface operations run against.
//!
//! Anycast and multicast walk the overlay hop by hop; everything they
//! need to know about the system is behind [`OverlayWorld`]:
//! who is online *right now* (ground truth — an offline node simply does
//! not answer), what each node believes about its own availability (from
//! the monitoring service), each node's cached neighbor lists, and — for
//! measurement only — true availabilities.
//!
//! The production implementation is the full-system harness
//! ([`crate::harness::AvmemSim`]); tests use hand-built mock worlds.

use avmem_util::{Availability, NodeId};

use crate::membership::{Neighbor, SliverScope};

/// Read access to the simulated system state at the instant an operation
/// executes.
///
/// Operations complete in at most seconds of virtual time while churn
/// happens on a minutes scale, so the world is treated as static for the
/// duration of a single operation — matching the paper's methodology.
pub trait OverlayWorld {
    /// The whole (fixed) population.
    fn node_ids(&self) -> Vec<NodeId>;

    /// Whether `id` is online right now (ground truth).
    fn is_online(&self, id: NodeId) -> bool;

    /// What `id` believes its own availability is (its latest answer from
    /// the monitoring service). Used by "am I in the target range?"
    /// checks.
    fn believed_availability(&self, id: NodeId) -> Availability;

    /// The true long-term availability of `id` (measurement only; no
    /// protocol decision may depend on it).
    fn true_availability(&self, id: NodeId) -> Availability;

    /// `id`'s current neighbors in `scope`, with *cached* availabilities
    /// (the paper's forwarding uses values cached at the last refresh,
    /// §3.2).
    fn neighbors(&self, id: NodeId, scope: SliverScope) -> Vec<Neighbor>;
}

#[cfg(test)]
pub(crate) mod mock {
    use super::*;
    use avmem_sim::SimTime;
    use std::collections::HashMap;

    /// A hand-wired world for operation unit tests.
    #[derive(Debug, Default)]
    pub struct MockWorld {
        pub nodes: Vec<NodeId>,
        pub online: HashMap<NodeId, bool>,
        pub availability: HashMap<NodeId, f64>,
        pub hs: HashMap<NodeId, Vec<NodeId>>,
        pub vs: HashMap<NodeId, Vec<NodeId>>,
    }

    impl MockWorld {
        /// Adds a node with the given availability, online.
        pub fn add(&mut self, id: u64, av: f64) {
            let node = NodeId::new(id);
            self.nodes.push(node);
            self.online.insert(node, true);
            self.availability.insert(node, av);
        }

        /// Declares `a`'s horizontal-sliver edge to `b`.
        pub fn hs_edge(&mut self, a: u64, b: u64) {
            self.hs.entry(NodeId::new(a)).or_default().push(NodeId::new(b));
        }

        /// Declares `a`'s vertical-sliver edge to `b`.
        pub fn vs_edge(&mut self, a: u64, b: u64) {
            self.vs.entry(NodeId::new(a)).or_default().push(NodeId::new(b));
        }

        /// Marks a node offline.
        pub fn set_offline(&mut self, id: u64) {
            self.online.insert(NodeId::new(id), false);
        }

        fn to_neighbors(&self, ids: Option<&Vec<NodeId>>) -> Vec<Neighbor> {
            ids.map(|v| {
                v.iter()
                    .map(|&id| Neighbor {
                        id,
                        cached_availability: Availability::saturating(
                            self.availability.get(&id).copied().unwrap_or(0.0),
                        ),
                        added_at: SimTime::ZERO,
                        refreshed_at: SimTime::ZERO,
                    })
                    .collect()
            })
            .unwrap_or_default()
        }
    }

    impl OverlayWorld for MockWorld {
        fn node_ids(&self) -> Vec<NodeId> {
            self.nodes.clone()
        }

        fn is_online(&self, id: NodeId) -> bool {
            self.online.get(&id).copied().unwrap_or(false)
        }

        fn believed_availability(&self, id: NodeId) -> Availability {
            Availability::saturating(self.availability.get(&id).copied().unwrap_or(0.0))
        }

        fn true_availability(&self, id: NodeId) -> Availability {
            self.believed_availability(id)
        }

        fn neighbors(&self, id: NodeId, scope: SliverScope) -> Vec<Neighbor> {
            let mut out = Vec::new();
            if matches!(scope, SliverScope::HsOnly | SliverScope::Both) {
                out.extend(self.to_neighbors(self.hs.get(&id)));
            }
            if matches!(scope, SliverScope::VsOnly | SliverScope::Both) {
                out.extend(self.to_neighbors(self.vs.get(&id)));
            }
            out
        }
    }
}
