//! Availability-based management operations over the AVMEM overlay
//! (§3.2 of the paper): threshold-/range-anycast and
//! threshold-/range-multicast.
//!
//! * [`target`] — the availability region an operation addresses;
//! * [`world`] — the read-only system interface operations execute
//!   against;
//! * [`anycast`] — greedy / retried-greedy / simulated-annealing
//!   forwarding (§3.2-I);
//! * [`multicast`] — two-stage multicast: anycast into the range, then
//!   flooding or gossip within it (§3.2-II).

pub mod anycast;
pub mod multicast;
pub mod target;
pub mod world;

pub use anycast::{run_anycast, AnycastConfig, AnycastDrop, AnycastOutcome, ForwardPolicy};
pub use multicast::{run_multicast, MulticastConfig, MulticastOutcome, MulticastStrategy};
pub use target::AvailabilityTarget;
pub use world::OverlayWorld;
