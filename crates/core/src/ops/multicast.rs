//! {Threshold, Range}-Multicast (§3.2-II of the paper).
//!
//! A multicast is a two-stage process: an **anycast into the range**
//! followed by **dissemination within the range**, using either:
//!
//! * **Flooding** — on first receipt, an in-range node forwards the
//!   message to *all* its neighbors whose cached availability lies in the
//!   range. Highly reliable, wasteful (duplicate copies).
//! * **Gossip** — on first receipt, an in-range node gossips
//!   periodically: every `period`, it picks up to `fanout` in-range
//!   neighbors it has not yet sent to (deterministic iteration through
//!   its list) and forwards; it stops after `rounds` periods. The paper
//!   sets `rounds × fanout = log N*` for w.h.p. dissemination.
//!
//! Both strategies run over the discrete-event engine so the latency CDFs
//! of Figs. 11–13 fall out of message timing directly.

use std::collections::{HashMap, HashSet};

use avmem_sim::{Engine, Network, SimDuration, SimTime};
use avmem_util::{NodeId, Rng};
use serde::{Deserialize, Serialize};

use crate::membership::SliverScope;
use crate::ops::anycast::{run_anycast, AnycastConfig, AnycastOutcome};
use crate::ops::target::AvailabilityTarget;
use crate::ops::world::OverlayWorld;

/// Dissemination strategy inside the target range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MulticastStrategy {
    /// Forward to every in-range neighbor on first receipt.
    Flood,
    /// Periodic gossip with bounded fanout and rounds.
    Gossip {
        /// Neighbors contacted per gossip period.
        fanout: u32,
        /// Number of gossip periods after first receipt (`Ng`).
        rounds: u32,
        /// Gossip period length (the paper uses 1 s).
        period: SimDuration,
    },
}

impl MulticastStrategy {
    /// The paper's gossip parameters: fanout 5, `Ng` = 2, period 1 s
    /// (`fanout × Ng ≈ log N*` for the 1442-host trace).
    pub fn paper_gossip() -> Self {
        MulticastStrategy::Gossip {
            fanout: 5,
            rounds: 2,
            period: SimDuration::from_secs(1),
        }
    }
}

/// Configuration of one multicast.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MulticastConfig {
    /// Dissemination strategy within the range.
    pub strategy: MulticastStrategy,
    /// Which sliver lists dissemination may use.
    pub scope: SliverScope,
    /// Configuration of the stage-1 anycast that carries the message into
    /// the range.
    pub anycast: AnycastConfig,
}

impl MulticastConfig {
    /// The paper's default: flooding over HS+VS, entered via a
    /// retried-greedy anycast (TTL 6, retry 8).
    pub fn paper_default() -> Self {
        MulticastConfig {
            strategy: MulticastStrategy::Flood,
            scope: SliverScope::Both,
            anycast: AnycastConfig {
                policy: crate::ops::anycast::ForwardPolicy::RetriedGreedy { retries: 8 },
                scope: SliverScope::Both,
                ttl: 6,
            },
        }
    }
}

/// Result of one multicast.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MulticastOutcome {
    /// The stage-1 anycast that carried the message to the range.
    pub anycast: AnycastOutcome,
    /// Arrival time (measured from multicast start, anycast latency
    /// included) per node that received the payload.
    pub deliveries: HashMap<NodeId, SimDuration>,
    /// Online nodes whose *true* availability lies in the target — the
    /// paper's "number that could have been delivered".
    pub eligible: usize,
    /// Total payload messages sent during dissemination (anycast messages
    /// are accounted in `anycast`).
    pub messages: u32,
}

impl MulticastOutcome {
    /// Nodes that received the payload and truly belong to the range.
    pub fn delivered_in_range<'a>(
        &'a self,
        world: &'a (impl OverlayWorld + ?Sized),
        target: AvailabilityTarget,
    ) -> impl Iterator<Item = NodeId> + 'a {
        self.deliveries
            .keys()
            .copied()
            .filter(move |&id| target.contains(world.true_availability(id)))
    }

    /// The paper's reliability metric: delivered / could-have-been
    /// delivered. `None` when the range held no eligible node.
    pub fn reliability(
        &self,
        world: &(impl OverlayWorld + ?Sized),
        target: AvailabilityTarget,
    ) -> Option<f64> {
        if self.eligible == 0 {
            return None;
        }
        let delivered = self.delivered_in_range(world, target).count();
        Some(delivered as f64 / self.eligible as f64)
    }

    /// The paper's spam metric (Fig. 12): receivers outside the true
    /// range, divided by the eligible count. `None` when the range held
    /// no eligible node.
    pub fn spam_ratio(
        &self,
        world: &(impl OverlayWorld + ?Sized),
        target: AvailabilityTarget,
    ) -> Option<f64> {
        if self.eligible == 0 {
            return None;
        }
        let spam = self
            .deliveries
            .keys()
            .filter(|&&id| !target.contains(world.true_availability(id)))
            .count();
        Some(spam as f64 / self.eligible as f64)
    }

    /// Worst-case delivery latency — "the time of the last receiving node
    /// obtaining the multicast" (Fig. 11). `None` if nothing was
    /// delivered.
    pub fn worst_latency(&self) -> Option<SimDuration> {
        self.deliveries.values().copied().max()
    }
}

/// Internal dissemination events.
#[derive(Debug)]
enum McEvent {
    /// Payload arriving at a node.
    Deliver { to: NodeId },
    /// A gossip period firing at an in-range node.
    GossipTick { at: NodeId },
}

/// Per-node gossip progress.
#[derive(Debug, Default)]
struct GossipState {
    /// Index into the deterministic neighbor iteration.
    cursor: usize,
    /// Gossip rounds already executed.
    rounds_done: u32,
    /// Nodes already sent to (includes flood forwarding).
    sent_to: HashSet<NodeId>,
}

/// Runs one multicast: anycast into the range, then flood/gossip within.
///
/// Returns the outcome even when the anycast fails to enter the range (in
/// which case `deliveries` is empty unless the initiator itself was in
/// range).
pub fn run_multicast<W, R>(
    world: &W,
    net: &mut Network,
    rng: &mut R,
    initiator: NodeId,
    target: AvailabilityTarget,
    config: MulticastConfig,
) -> MulticastOutcome
where
    W: OverlayWorld + ?Sized,
    R: Rng,
{
    let eligible = world
        .node_ids()
        .into_iter()
        .filter(|&id| world.is_online(id) && target.contains(world.true_availability(id)))
        .count();

    // Stage 1: anycast into the range.
    let anycast = run_anycast(world, net, rng, initiator, target, config.anycast);
    let mut outcome = MulticastOutcome {
        anycast,
        deliveries: HashMap::new(),
        eligible,
        messages: 0,
    };
    let Some(entry) = outcome.anycast.delivered_to else {
        return outcome;
    };

    // Stage 2: dissemination, driven by the event engine. Time zero is
    // the multicast start; the entry node receives at the anycast's
    // latency.
    let mut engine: Engine<McEvent> = Engine::new();
    let mut states: HashMap<NodeId, GossipState> = HashMap::new();
    engine.schedule(
        SimTime::ZERO + outcome.anycast.latency,
        McEvent::Deliver { to: entry },
    );

    // Dissemination always terminates: floods forward once per node and
    // gossip runs a bounded number of rounds.
    while let Some((now, event)) = engine.pop_until(SimTime::MAX) {
        match event {
            McEvent::Deliver { to } => {
                if outcome.deliveries.contains_key(&to) {
                    continue; // duplicate copy, ignored
                }
                outcome
                    .deliveries
                    .insert(to, now.saturating_since(SimTime::ZERO));
                // Only nodes that believe themselves in range forward.
                if !target.contains(world.believed_availability(to)) {
                    continue;
                }
                match config.strategy {
                    MulticastStrategy::Flood => {
                        let state = states.entry(to).or_default();
                        for neighbor in world.neighbors(to, config.scope) {
                            if !target.contains(neighbor.cached_availability)
                                || state.sent_to.contains(&neighbor.id)
                            {
                                continue;
                            }
                            state.sent_to.insert(neighbor.id);
                            outcome.messages += 1;
                            if world.is_online(neighbor.id) {
                                engine.schedule(
                                    now + net.hop_latency(),
                                    McEvent::Deliver { to: neighbor.id },
                                );
                            }
                        }
                    }
                    MulticastStrategy::Gossip { .. } => {
                        states.entry(to).or_default();
                        // First gossip round fires immediately on receipt.
                        engine.schedule(now, McEvent::GossipTick { at: to });
                    }
                }
            }
            McEvent::GossipTick { at } => {
                let MulticastStrategy::Gossip {
                    fanout,
                    rounds,
                    period,
                } = config.strategy
                else {
                    continue;
                };
                let neighbors = world.neighbors(at, config.scope);
                let state = states.entry(at).or_default();
                if state.rounds_done >= rounds {
                    continue;
                }
                state.rounds_done += 1;
                // Deterministic iteration through the list (§3.2): resume
                // from the cursor, take up to `fanout` eligible targets.
                let mut sent = 0;
                let mut inspected = 0;
                while sent < fanout && inspected < neighbors.len() {
                    let neighbor = &neighbors[state.cursor % neighbors.len()];
                    state.cursor += 1;
                    inspected += 1;
                    if !target.contains(neighbor.cached_availability)
                        || state.sent_to.contains(&neighbor.id)
                    {
                        continue;
                    }
                    state.sent_to.insert(neighbor.id);
                    outcome.messages += 1;
                    sent += 1;
                    if world.is_online(neighbor.id) {
                        engine.schedule(
                            now + net.hop_latency(),
                            McEvent::Deliver { to: neighbor.id },
                        );
                    }
                }
                if state.rounds_done < rounds {
                    engine.schedule(now + period, McEvent::GossipTick { at });
                }
            }
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use avmem_sim::LatencyModel;
    use avmem_util::Xoshiro256;

    use crate::ops::anycast::ForwardPolicy;
    use crate::ops::world::mock::MockWorld;

    fn net() -> Network {
        Network::new(LatencyModel::Constant { millis: 50 }, 0.0, 1)
    }

    fn rng() -> Xoshiro256 {
        Xoshiro256::new(3)
    }

    /// A clique of five in-range nodes (av 0.9) reachable from an
    /// initiator at av 0.5 through node 1.
    fn clique_world() -> MockWorld {
        let mut w = MockWorld::default();
        w.add(0, 0.5);
        for i in 1..=5 {
            w.add(i, 0.9);
            w.vs_edge(0, i);
        }
        for i in 1..=5u64 {
            for j in 1..=5u64 {
                if i != j {
                    w.hs_edge(i, j);
                }
            }
        }
        w
    }

    #[test]
    fn flood_reaches_the_whole_clique() {
        let w = clique_world();
        let outcome = run_multicast(
            &w,
            &mut net(),
            &mut rng(),
            NodeId::new(0),
            AvailabilityTarget::range(0.85, 0.95),
            MulticastConfig::paper_default(),
        );
        assert_eq!(outcome.eligible, 5);
        assert_eq!(outcome.deliveries.len(), 5);
        assert_eq!(
            outcome.reliability(&w, AvailabilityTarget::range(0.85, 0.95)),
            Some(1.0)
        );
        assert_eq!(
            outcome.spam_ratio(&w, AvailabilityTarget::range(0.85, 0.95)),
            Some(0.0)
        );
    }

    #[test]
    fn flood_latency_is_anycast_plus_dissemination() {
        let w = clique_world();
        let outcome = run_multicast(
            &w,
            &mut net(),
            &mut rng(),
            NodeId::new(0),
            AvailabilityTarget::range(0.85, 0.95),
            MulticastConfig::paper_default(),
        );
        // Anycast: one 50 ms hop; flood: one more 50 ms level.
        assert_eq!(outcome.anycast.latency, SimDuration::from_millis(50));
        assert_eq!(outcome.worst_latency(), Some(SimDuration::from_millis(100)));
    }

    #[test]
    fn failed_anycast_means_no_deliveries() {
        let mut w = MockWorld::default();
        w.add(0, 0.5); // no neighbors at all
        let outcome = run_multicast(
            &w,
            &mut net(),
            &mut rng(),
            NodeId::new(0),
            AvailabilityTarget::range(0.85, 0.95),
            MulticastConfig::paper_default(),
        );
        assert!(outcome.deliveries.is_empty());
        assert!(!outcome.anycast.is_delivered());
    }

    #[test]
    fn initiator_in_range_seeds_dissemination() {
        let mut w = MockWorld::default();
        w.add(0, 0.9);
        w.add(1, 0.9);
        w.hs_edge(0, 1);
        let outcome = run_multicast(
            &w,
            &mut net(),
            &mut rng(),
            NodeId::new(0),
            AvailabilityTarget::range(0.85, 0.95),
            MulticastConfig::paper_default(),
        );
        assert_eq!(outcome.deliveries.len(), 2);
        assert_eq!(outcome.deliveries[&NodeId::new(0)], SimDuration::ZERO);
    }

    #[test]
    fn out_of_range_receiver_is_spam_and_does_not_forward() {
        // Node 1 is believed in range by node 0's cache, but its true
        // availability is outside; it must count as spam and not forward
        // to node 2.
        let mut w = MockWorld::default();
        w.add(0, 0.9);
        w.add(1, 0.5); // truth: out of range
        w.add(2, 0.9);
        w.hs_edge(0, 1);
        w.hs_edge(1, 2);
        // Force node 0's cache to believe node 1 is in range.
        // MockWorld uses live availability as cache, so instead verify
        // the "does not forward" behaviour: node 1 receives nothing since
        // cache says 0.5. Build the spam case via a second world below.
        let target = AvailabilityTarget::range(0.85, 0.95);
        let outcome = run_multicast(
            &w,
            &mut net(),
            &mut rng(),
            NodeId::new(0),
            target,
            MulticastConfig::paper_default(),
        );
        // Node 1's cached availability (0.5) is out of range: never sent.
        assert!(!outcome.deliveries.contains_key(&NodeId::new(1)));
        assert!(!outcome.deliveries.contains_key(&NodeId::new(2)));
    }

    #[test]
    fn gossip_reaches_clique_within_rounds() {
        let w = clique_world();
        let outcome = run_multicast(
            &w,
            &mut net(),
            &mut rng(),
            NodeId::new(0),
            AvailabilityTarget::range(0.85, 0.95),
            MulticastConfig {
                strategy: MulticastStrategy::paper_gossip(),
                ..MulticastConfig::paper_default()
            },
        );
        // fanout 5 × 2 rounds covers a 5-clique easily.
        assert_eq!(outcome.deliveries.len(), 5);
    }

    #[test]
    fn gossip_respects_fanout_budget() {
        // A star: node 1 (in range) knows 20 in-range leaves; with
        // fanout 2 × 1 round it may contact at most 2.
        let mut w = MockWorld::default();
        w.add(1, 0.9);
        for i in 2..=21 {
            w.add(i, 0.9);
            w.hs_edge(1, i);
        }
        let outcome = run_multicast(
            &w,
            &mut net(),
            &mut rng(),
            NodeId::new(1),
            AvailabilityTarget::range(0.85, 0.95),
            MulticastConfig {
                strategy: MulticastStrategy::Gossip {
                    fanout: 2,
                    rounds: 1,
                    period: SimDuration::from_secs(1),
                },
                anycast: AnycastConfig {
                    policy: ForwardPolicy::Greedy,
                    scope: SliverScope::Both,
                    ttl: 6,
                },
                scope: SliverScope::Both,
            },
        );
        // Initiator + 2 leaves, but leaves gossip onward… leaves only
        // know nobody (edges are directed in MockWorld), so exactly 3.
        assert_eq!(outcome.deliveries.len(), 3);
        assert_eq!(outcome.messages, 2);
    }

    /// A larger clique (10 in-range nodes) where flooding's quadratic
    /// message cost clearly exceeds gossip's bounded fanout.
    fn big_clique_world() -> MockWorld {
        let mut w = MockWorld::default();
        w.add(0, 0.5);
        for i in 1..=10 {
            w.add(i, 0.9);
            w.vs_edge(0, i);
        }
        for i in 1..=10u64 {
            for j in 1..=10u64 {
                if i != j {
                    w.hs_edge(i, j);
                }
            }
        }
        w
    }

    #[test]
    fn gossip_is_cheaper_than_flood_on_dense_graphs() {
        let w = big_clique_world();
        let target = AvailabilityTarget::range(0.85, 0.95);
        let flood = run_multicast(
            &w,
            &mut net(),
            &mut rng(),
            NodeId::new(0),
            target,
            MulticastConfig::paper_default(),
        );
        let gossip = run_multicast(
            &w,
            &mut net(),
            &mut rng(),
            NodeId::new(0),
            target,
            MulticastConfig {
                strategy: MulticastStrategy::Gossip {
                    fanout: 2,
                    rounds: 2,
                    period: SimDuration::from_secs(1),
                },
                ..MulticastConfig::paper_default()
            },
        );
        assert!(
            gossip.messages < flood.messages,
            "gossip {} should send fewer than flood {}",
            gossip.messages,
            flood.messages
        );
    }

    #[test]
    fn offline_nodes_do_not_receive() {
        let mut w = clique_world();
        w.set_offline(3);
        let outcome = run_multicast(
            &w,
            &mut net(),
            &mut rng(),
            NodeId::new(0),
            AvailabilityTarget::range(0.85, 0.95),
            MulticastConfig::paper_default(),
        );
        assert!(!outcome.deliveries.contains_key(&NodeId::new(3)));
        assert_eq!(outcome.eligible, 4); // offline node not eligible
    }

    #[test]
    fn gossip_cursor_wraps_without_resending() {
        // Node 1 has 3 in-range neighbors but fanout 5: the deterministic
        // iteration wraps the list yet never sends twice to the same node.
        let mut w = MockWorld::default();
        w.add(1, 0.9);
        for i in 2..=4 {
            w.add(i, 0.9);
            w.hs_edge(1, i);
        }
        let outcome = run_multicast(
            &w,
            &mut net(),
            &mut rng(),
            NodeId::new(1),
            AvailabilityTarget::range(0.85, 0.95),
            MulticastConfig {
                strategy: MulticastStrategy::Gossip {
                    fanout: 5,
                    rounds: 3,
                    period: SimDuration::from_secs(1),
                },
                ..MulticastConfig::paper_default()
            },
        );
        // 3 distinct targets, each exactly once, despite 3 rounds × 5.
        assert_eq!(outcome.messages, 3);
        assert_eq!(outcome.deliveries.len(), 4);
    }

    #[test]
    fn multicast_outcome_latency_includes_anycast_stage() {
        let w = clique_world();
        let outcome = run_multicast(
            &w,
            &mut net(),
            &mut rng(),
            NodeId::new(0),
            AvailabilityTarget::range(0.85, 0.95),
            MulticastConfig::paper_default(),
        );
        // Every dissemination delivery happens at or after the entry time.
        let entry_latency = outcome.anycast.latency;
        for (&node, &at) in &outcome.deliveries {
            assert!(
                at >= entry_latency,
                "{node} delivered at {at} before anycast completed at {entry_latency}"
            );
        }
    }

    #[test]
    fn reliability_none_when_range_empty() {
        let mut w = MockWorld::default();
        w.add(0, 0.5);
        let target = AvailabilityTarget::range(0.98, 0.99);
        let outcome = run_multicast(
            &w,
            &mut net(),
            &mut rng(),
            NodeId::new(0),
            target,
            MulticastConfig::paper_default(),
        );
        assert_eq!(outcome.reliability(&w, target), None);
        assert_eq!(outcome.spam_ratio(&w, target), None);
    }
}
