#![warn(missing_docs)]

//! # AVMEM — availability-aware membership overlays
//!
//! A production-quality Rust reproduction of *"AVMEM — Availability-Aware
//! Overlays for Management Operations in Non-cooperative Distributed
//! Systems"* (Cho, Morales & Gupta, ACM/IFIP/USENIX Middleware 2007).
//!
//! AVMEM is a membership overlay in which every node `x` keeps two small
//! neighbor lists selected by a **random and consistent** predicate over
//! node identities and availabilities (Eq. 1 of the paper):
//!
//! ```text
//! M(x, y) ≡ { H(id(x), id(y)) ≤ f(av(x), av(y)) }
//! ```
//!
//! * the **horizontal sliver** holds a random subset of nodes with
//!   availability within `±ε` of `av(x)`;
//! * the **vertical sliver** holds a random sample across the whole
//!   availability spectrum.
//!
//! Consistency makes the relation verifiable by any third party, which
//! contains selfish nodes; randomness keeps the overlay connected with
//! `O(log N*)` degree. On top of the overlay, four availability-based
//! management operations run efficiently: threshold-/range-anycast and
//! threshold-/range-multicast.
//!
//! ## Module map
//!
//! | module | paper section | contents |
//! |--------|---------------|----------|
//! | [`predicate`] | §2 | Eq. 1 framework, sub-predicates I.A–I.C / II.A–II.B, random baseline |
//! | [`membership`] | §3.1 | HS/VS lists, discovery & refresh sub-protocols |
//! | [`verify`] | §4.1 | receiver-side admission checks + cushion |
//! | [`ops`] | §3.2 | anycast (greedy/retried/annealing) and multicast (flood/gossip) |
//! | [`graph`] | §4.1 | overlay snapshots and graph analysis |
//! | [`harness`] | §4 | the full-system simulation binding every substrate |
//!
//! ## Quickstart
//!
//! ```
//! use avmem::harness::{AvmemSim, InitiatorBand, SimConfig};
//! use avmem::ops::{AnycastConfig, AvailabilityTarget};
//! use avmem_sim::SimDuration;
//! use avmem_trace::OvernetModel;
//!
//! // A synthetic Overnet-like churn trace (the paper's workload).
//! let trace = OvernetModel::default().hosts(150).days(1).generate(42);
//!
//! // Build and warm up the overlay with the paper's default predicates.
//! let mut sim = AvmemSim::new(trace, SimConfig::paper_default(7));
//! sim.warm_up(SimDuration::from_hours(24));
//!
//! // Range-anycast into high availability from a mid-availability node.
//! if let Some(initiator) = sim.random_online_initiator(InitiatorBand::Mid) {
//!     let outcome = sim.anycast(
//!         initiator,
//!         AvailabilityTarget::range(0.85, 0.95),
//!         AnycastConfig::paper_default(),
//!     );
//!     println!("delivered in {} hops", outcome.hops);
//! }
//! ```

pub mod graph;
pub mod harness;
pub mod membership;
pub mod ops;
pub mod predicate;
pub mod verify;

pub use graph::{NodeSnapshot, OverlaySnapshot};
pub use harness::{AvmemSim, FinalizeStats, HealthStats, InitiatorBand, PhaseTimings, SimConfig};
pub use membership::{Membership, Neighbor, SliverScope};
pub use ops::{
    AnycastConfig, AnycastOutcome, AvailabilityTarget, ForwardPolicy, MulticastConfig,
    MulticastOutcome, MulticastStrategy,
};
pub use predicate::{
    AvmemPredicate, HorizontalRule, MembershipPredicate, NodeInfo, RandomPredicate, Sliver,
    VerticalRule,
};
pub use verify::AdmissionPolicy;
