//! Receiver-side admission checks (the non-cooperative defence).
//!
//! "Each node checks each incoming message to verify if its sender is a
//! valid in-neighbor (according to the AVMEM predicate), and reject it if
//! not" (§4.1). A receiver `y` validating a sender `x` evaluates
//! `M(x, y)` — is *y* legitimately in *x*'s membership list? — using
//! **its own** availability estimates of both nodes, which may disagree
//! with the sender's. The paper adds a constant *cushion* to the
//! right-hand side of Eq. 1 to absorb that divergence, trading a slightly
//! higher flooding-attack acceptance (Fig. 5) for a much lower legitimate
//! rejection rate (Fig. 6).

use avmem_avmon::AvailabilityOracle;
use avmem_sim::SimTime;
use avmem_util::NodeId;
use serde::{Deserialize, Serialize};

use crate::predicate::{MembershipPredicate, NodeInfo};

/// Receiver-side message admission policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdmissionPolicy {
    /// The cushion added to the predicate threshold during verification.
    pub cushion: f64,
}

impl AdmissionPolicy {
    /// A strict policy (no cushion).
    pub fn strict() -> Self {
        AdmissionPolicy { cushion: 0.0 }
    }

    /// The paper's relaxed policy: cushion 0.1.
    pub fn paper_cushion() -> Self {
        AdmissionPolicy { cushion: 0.1 }
    }

    /// Creates a policy with a custom cushion.
    ///
    /// # Panics
    ///
    /// Panics if `cushion` is negative.
    pub fn with_cushion(cushion: f64) -> Self {
        assert!(cushion >= 0.0, "cushion must be non-negative");
        AdmissionPolicy { cushion }
    }

    /// Would `receiver` accept a message from `sender`?
    ///
    /// Both availabilities are looked up through the *receiver's* oracle
    /// view — this is what makes verification vulnerable to estimate
    /// divergence, and what the cushion compensates for.
    pub fn accepts<P, O>(
        &self,
        predicate: &P,
        oracle: &O,
        sender: NodeId,
        receiver: NodeId,
        now: SimTime,
    ) -> bool
    where
        P: MembershipPredicate + ?Sized,
        O: AvailabilityOracle + ?Sized,
    {
        let Some(sender_av) = oracle.estimate(receiver, sender, now) else {
            // Unknown sender: reject (cannot verify the predicate).
            return false;
        };
        let Some(receiver_av) = oracle.estimate(receiver, receiver, now) else {
            return false;
        };
        predicate.member_with_cushion(
            NodeInfo::new(sender, sender_av),
            NodeInfo::new(receiver, receiver_av),
            self.cushion,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avmem_avmon::{NoisyOracle, TraceOracle};
    use avmem_sim::SimDuration;
    use avmem_trace::{AvailabilityPdf, OvernetModel};
    use avmem_util::Availability;

    use crate::predicate::AvmemPredicate;

    fn setup() -> (
        avmem_trace::ChurnTrace,
        TraceOracle,
        AvmemPredicate,
    ) {
        let trace = OvernetModel::default().hosts(200).days(1).generate(21);
        let oracle = TraceOracle::new(&trace);
        let sample: Vec<Availability> = (0..trace.num_nodes())
            .map(|i| trace.long_term_availability(i))
            .collect();
        let pdf = AvailabilityPdf::from_sample(&sample, 10);
        let pred = AvmemPredicate::paper_default(trace.num_nodes() as f64, pdf);
        (trace, oracle, pred)
    }

    #[test]
    fn exact_oracle_accepts_exactly_the_neighbors() {
        let (trace, oracle, pred) = setup();
        let policy = AdmissionPolicy::strict();
        let now = SimTime::ZERO;
        let mut checked = 0;
        for s in 0..30usize {
            for r in 0..30usize {
                if s == r {
                    continue;
                }
                let (sender, receiver) = (trace.node_id(s), trace.node_id(r));
                let expected = {
                    let s_info = NodeInfo::new(sender, trace.long_term_availability(s));
                    let r_info = NodeInfo::new(receiver, trace.long_term_availability(r));
                    pred.member(s_info, r_info)
                };
                assert_eq!(
                    policy.accepts(&pred, &oracle, sender, receiver, now),
                    expected
                );
                checked += 1;
            }
        }
        assert!(checked > 0);
    }

    #[test]
    fn noisy_oracle_rejects_some_legitimate_senders() {
        let (trace, truth, pred) = setup();
        let noisy = NoisyOracle::new(
            TraceOracle::new(&trace),
            0.08,
            SimDuration::from_mins(20),
            5,
        );
        let strict = AdmissionPolicy::strict();
        let now = SimTime::ZERO;
        let mut legitimate = 0;
        let mut rejected = 0;
        for s in 0..trace.num_nodes() {
            for r in 0..trace.num_nodes() {
                if s == r {
                    continue;
                }
                let (sender, receiver) = (trace.node_id(s), trace.node_id(r));
                // Legitimate relationship under ground truth.
                if !strict.accepts(&pred, &truth, sender, receiver, now) {
                    continue;
                }
                legitimate += 1;
                if !strict.accepts(&pred, &noisy, sender, receiver, now) {
                    rejected += 1;
                }
                if legitimate >= 3000 {
                    break;
                }
            }
            if legitimate >= 3000 {
                break;
            }
        }
        assert!(legitimate > 100, "not enough legitimate pairs sampled");
        assert!(
            rejected > 0,
            "noise must cause some legitimate rejections"
        );
    }

    #[test]
    fn cushion_reduces_legitimate_rejections() {
        let (trace, truth, pred) = setup();
        let noisy = NoisyOracle::new(
            TraceOracle::new(&trace),
            0.08,
            SimDuration::from_mins(20),
            5,
        );
        let strict = AdmissionPolicy::strict();
        let relaxed = AdmissionPolicy::paper_cushion();
        let now = SimTime::ZERO;
        let mut rejected_strict = 0;
        let mut rejected_relaxed = 0;
        let mut legitimate = 0;
        for s in 0..trace.num_nodes() {
            for r in (s + 1)..trace.num_nodes() {
                let (sender, receiver) = (trace.node_id(s), trace.node_id(r));
                if !strict.accepts(&pred, &truth, sender, receiver, now) {
                    continue;
                }
                legitimate += 1;
                if !strict.accepts(&pred, &noisy, sender, receiver, now) {
                    rejected_strict += 1;
                }
                if !relaxed.accepts(&pred, &noisy, sender, receiver, now) {
                    rejected_relaxed += 1;
                }
            }
        }
        assert!(legitimate > 100);
        assert!(
            rejected_relaxed < rejected_strict,
            "cushion should reduce rejections: strict {rejected_strict}, relaxed {rejected_relaxed}"
        );
    }

    #[test]
    fn unknown_sender_is_rejected() {
        let (_trace, oracle, pred) = setup();
        let policy = AdmissionPolicy::paper_cushion();
        assert!(!policy.accepts(
            &pred,
            &oracle,
            NodeId::new(999_999),
            NodeId::new(1),
            SimTime::ZERO
        ));
    }

    #[test]
    #[should_panic(expected = "cushion")]
    fn negative_cushion_panics() {
        let _ = AdmissionPolicy::with_cushion(-0.1);
    }
}
