//! AVMEM membership predicates (§2 of the paper).
//!
//! The framework is Eq. 1:
//!
//! ```text
//! M(x, y) ≡ { H(id(x), id(y)) ≤ f(av(x), av(y)) }
//! ```
//!
//! `H` is a fixed normalized cryptographic hash (see
//! [`avmem_util::consistent_hash`]); the predicate is therefore entirely
//! determined by the *sub-predicate function* `f`. This module provides
//! the paper's family:
//!
//! | rule | where it applies | `f(av(x), av(y))` |
//! |------|------------------|--------------------|
//! | [`VerticalRule::Constant`] (I.A) | `\|av(x)−av(y)\| ≥ ε` | `d₁` |
//! | [`VerticalRule::Logarithmic`] (I.B) | ″ | `min(c₁·ln N* / (N*·p(av(y))), 1)` |
//! | [`VerticalRule::LogarithmicDecreasing`] (I.C) | ″ | `min(c₁·ln N* / (N*·p(av(y))·\|av(y)−av(x)\|), 1)` |
//! | [`HorizontalRule::Constant`] (II.A) | `\|av(x)−av(y)\| < ε` | `d₂` |
//! | [`HorizontalRule::LogarithmicConstant`] (II.B) | ″ | `min(c₂·ln N*_av(x) / N*min_av(x), 1)` |
//!
//! plus the availability-agnostic [`RandomPredicate`] (`f = p`), which
//! yields a *consistent* random overlay "like SCAMP or CYCLON" — the
//! baseline of the paper's Fig. 10.
//!
//! Everything here is a pure function of `(id, av)` pairs and the
//! system-wide constants (`ε`, `N*`, the discretized PDF): this is what
//! makes the overlay verifiable by third parties and robust to selfish
//! nodes.

use avmem_trace::AvailabilityPdf;
use avmem_util::{consistent_hash, Availability, NodeId};
use serde::{Deserialize, Serialize};

/// A node as the predicate sees it: identity plus (estimated)
/// availability.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeInfo {
    /// The node's identity (`id(x)`).
    pub id: NodeId,
    /// The node's availability (`av(x)`) as reported by the monitoring
    /// service.
    pub availability: Availability,
}

impl NodeInfo {
    /// Convenience constructor.
    pub fn new(id: NodeId, availability: Availability) -> Self {
        NodeInfo { id, availability }
    }
}

/// Which membership list a neighbor belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Sliver {
    /// Horizontal sliver: availability within `±ε` of the owner's.
    Horizontal,
    /// Vertical sliver: availability outside the `±ε` band.
    Vertical,
}

/// A consistent membership predicate: the `f` of Eq. 1 plus the band
/// geometry.
///
/// The provided methods implement the full Eq. 1 check, including the
/// optional *cushion* the paper adds to the right-hand side to tolerate
/// inconsistent availability estimates during verification (§4.1).
pub trait MembershipPredicate: std::fmt::Debug {
    /// The sub-predicate value `f(av(x), av(y)) ∈ [0, 1]`.
    fn threshold(&self, x: Availability, y: Availability) -> f64;

    /// The horizontal-band half-width `ε` used to classify slivers.
    fn epsilon(&self) -> f64;

    /// Which sliver a node with availability `y` would occupy in the
    /// lists of a node with availability `x`.
    fn sliver(&self, x: Availability, y: Availability) -> Sliver {
        if x.distance(y) < self.epsilon() {
            Sliver::Horizontal
        } else {
            Sliver::Vertical
        }
    }

    /// Full membership test `M(x, y)`: should `y` be in `x`'s lists?
    ///
    /// Consistent: any party evaluating this with the same availability
    /// inputs gets the same answer.
    fn member(&self, x: NodeInfo, y: NodeInfo) -> bool {
        self.member_with_cushion(x, y, 0.0)
    }

    /// Membership test with a verification cushion:
    /// `H(id(x), id(y)) ≤ f(av(x), av(y)) + cushion`.
    ///
    /// Receivers use a small positive cushion when validating senders so
    /// that slightly divergent availability estimates do not reject
    /// legitimate neighbors (paper §4.1, Figs. 5–6).
    fn member_with_cushion(&self, x: NodeInfo, y: NodeInfo, cushion: f64) -> bool {
        consistent_hash(x.id, y.id) <= self.threshold(x.availability, y.availability) + cushion
    }

    /// Classifies `y` relative to `x`: `Some(sliver)` if `M(x, y)` holds.
    fn classify(&self, x: NodeInfo, y: NodeInfo) -> Option<Sliver> {
        if x.id == y.id {
            return None;
        }
        self.member(x, y)
            .then(|| self.sliver(x.availability, y.availability))
    }

    /// Like [`MembershipPredicate::classify`] but with the pair hash
    /// `H(id(x), id(y))` supplied by the caller — large simulations
    /// precompute the `N²` hash matrix once instead of re-hashing on
    /// every evaluation.
    fn classify_hashed(&self, x: NodeInfo, y: NodeInfo, hash: f64, cushion: f64) -> Option<Sliver> {
        if x.id == y.id {
            return None;
        }
        (hash <= self.threshold(x.availability, y.availability) + cushion)
            .then(|| self.sliver(x.availability, y.availability))
    }
}

/// Vertical-sliver sub-predicates (§2.1 I.A–I.C).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum VerticalRule {
    /// I.A — constant probability `d₁`, availability-independent. "Works
    /// best in a system where any node is equi-probable of having any
    /// given availability."
    Constant {
        /// The fixed acceptance probability.
        d1: f64,
    },
    /// I.B — the canonical rule: inverse-density weighting ensures
    /// *uniform coverage* of the availability space (Theorem 1).
    Logarithmic {
        /// The constant `c₁` scaling the expected sliver size
        /// `c₁·ln N*`.
        c1: f64,
    },
    /// I.C — like I.B but additionally discounting by distance, giving
    /// exponentially spaced neighbors akin to Chord fingers
    /// (Corollary 1.1).
    LogarithmicDecreasing {
        /// The constant `c₁`.
        c1: f64,
    },
}

impl VerticalRule {
    /// An I.A rule tuned so the *expected* vertical sliver size is
    /// `c1·ln(n_star)` under a uniform availability PDF:
    /// `d₁ = c1·ln N*/N*`.
    ///
    /// # Panics
    ///
    /// Panics unless `c1 > 0` and `n_star > 1`.
    pub fn constant_for(c1: f64, n_star: f64) -> Self {
        assert!(c1 > 0.0, "c1 must be positive");
        assert!(n_star > 1.0, "n_star must exceed one");
        VerticalRule::Constant {
            d1: (c1 * n_star.ln() / n_star).min(1.0),
        }
    }
}

/// Horizontal-sliver sub-predicates (§2.1 II.A–II.B).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum HorizontalRule {
    /// II.A — constant probability `d₂` for every in-band candidate.
    /// Connectivity holds but "involves too many nodes" when the band is
    /// dense.
    Constant {
        /// The fixed acceptance probability.
        d2: f64,
    },
    /// II.B — the canonical rule: `min(c₂·ln(N*_av(x)) / N*min_av(x), 1)`,
    /// which keeps the band connected w.h.p. (Theorem 2) with only
    /// `O(log N*)` neighbors when the band is dense (Theorem 3).
    LogarithmicConstant {
        /// The constant `c₂`.
        c2: f64,
    },
}

impl HorizontalRule {
    /// A II.A rule tuned to an expected in-band degree of
    /// `c2·ln(n_star)` if the whole system sat inside one band:
    /// `d₂ = c2·ln N*/N*`.
    ///
    /// # Panics
    ///
    /// Panics unless `c2 > 0` and `n_star > 1`.
    pub fn constant_for(c2: f64, n_star: f64) -> Self {
        assert!(c2 > 0.0, "c2 must be positive");
        assert!(n_star > 1.0, "n_star must exceed one");
        HorizontalRule::Constant {
            d2: (c2 * n_star.ln() / n_star).min(1.0),
        }
    }
}

/// Default `c₁` for the vertical rules.
///
/// The paper does not publish its constants; `c₁ = 2.5` reproduces
/// Fig. 2(c)'s vertical sliver sizes (median ≈ 13 at 442 online nodes:
/// `c₁·ln N*·(1−2ε) ≈ 13`) and with it Fig. 7's ~one-hop anycast
/// deliveries.
pub const DEFAULT_C1: f64 = 2.5;

/// Default `c₂` for the horizontal rules (see [`DEFAULT_C1`]; `c₂ = 2`
/// reproduces Fig. 2(b)'s horizontal sliver scale).
pub const DEFAULT_C2: f64 = 2.0;

/// The full AVMEM predicate: band geometry, system constants, and one
/// rule per sliver.
///
/// # Examples
///
/// ```
/// use avmem::predicate::{AvmemPredicate, MembershipPredicate, NodeInfo};
/// use avmem_trace::AvailabilityPdf;
/// use avmem_util::{Availability, NodeId};
///
/// let pdf = AvailabilityPdf::uniform(10);
/// let pred = AvmemPredicate::paper_default(1442.0, pdf);
///
/// let x = NodeInfo::new(NodeId::new(1), Availability::saturating(0.5));
/// let y = NodeInfo::new(NodeId::new(2), Availability::saturating(0.9));
/// // Consistency: the decision is a pure function of the inputs.
/// assert_eq!(pred.member(x, y), pred.member(x, y));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AvmemPredicate {
    epsilon: f64,
    n_star: f64,
    vertical: VerticalRule,
    horizontal: HorizontalRule,
    pdf: AvailabilityPdf,
}

impl AvmemPredicate {
    /// The paper's defaults: `ε = 0.1`, rules I.B and II.B with
    /// [`DEFAULT_C1`] and [`DEFAULT_C2`].
    ///
    /// # Panics
    ///
    /// Panics unless `n_star > 1`.
    pub fn paper_default(n_star: f64, pdf: AvailabilityPdf) -> Self {
        AvmemPredicate::new(
            0.1,
            n_star,
            VerticalRule::Logarithmic { c1: DEFAULT_C1 },
            HorizontalRule::LogarithmicConstant { c2: DEFAULT_C2 },
            pdf,
        )
    }

    /// Creates a predicate from its parts.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < ε < 1` and `n_star > 1`, or if a constant rule
    /// carries a probability outside `[0, 1]`.
    pub fn new(
        epsilon: f64,
        n_star: f64,
        vertical: VerticalRule,
        horizontal: HorizontalRule,
        pdf: AvailabilityPdf,
    ) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0, 1)");
        assert!(n_star > 1.0, "n_star must exceed one");
        if let VerticalRule::Constant { d1 } = vertical {
            assert!((0.0..=1.0).contains(&d1), "d1 must be a probability");
        }
        if let HorizontalRule::Constant { d2 } = horizontal {
            assert!((0.0..=1.0).contains(&d2), "d2 must be a probability");
        }
        AvmemPredicate {
            epsilon,
            n_star,
            vertical,
            horizontal,
            pdf,
        }
    }

    /// The stable system-size parameter `N*`.
    pub fn n_star(&self) -> f64 {
        self.n_star
    }

    /// The configured vertical rule.
    pub fn vertical_rule(&self) -> VerticalRule {
        self.vertical
    }

    /// The configured horizontal rule.
    pub fn horizontal_rule(&self) -> HorizontalRule {
        self.horizontal
    }

    /// The discretized availability PDF in force.
    pub fn pdf(&self) -> &AvailabilityPdf {
        &self.pdf
    }

    fn vertical_threshold(&self, x: Availability, y: Availability) -> f64 {
        match self.vertical {
            VerticalRule::Constant { d1 } => d1,
            VerticalRule::Logarithmic { c1 } => {
                let density = self.pdf.density(y);
                if density <= 0.0 {
                    return 1.0;
                }
                (c1 * self.n_star.ln() / (self.n_star * density)).min(1.0)
            }
            VerticalRule::LogarithmicDecreasing { c1 } => {
                let density = self.pdf.density(y);
                let dist = x.distance(y);
                if density <= 0.0 || dist <= 0.0 {
                    return 1.0;
                }
                (c1 * self.n_star.ln() / (self.n_star * density * dist)).min(1.0)
            }
        }
    }

    fn horizontal_threshold(&self, x: Availability) -> f64 {
        match self.horizontal {
            HorizontalRule::Constant { d2 } => d2,
            HorizontalRule::LogarithmicConstant { c2 } => {
                let band = self.pdf.expected_in_band(self.n_star, x, self.epsilon);
                let min_window = self.pdf.min_window_mass(self.n_star, x, self.epsilon);
                if min_window <= 0.0 {
                    return 1.0;
                }
                // ln is clamped below at 1 (i.e. the formula treats bands
                // with fewer than e expected nodes as having log-size 1):
                // connectivity comes first, so a nearly-empty band should
                // drive the threshold to the 1.0 cap, not to zero.
                (c2 * band.ln().max(1.0) / min_window).min(1.0)
            }
        }
    }
}

impl MembershipPredicate for AvmemPredicate {
    fn threshold(&self, x: Availability, y: Availability) -> f64 {
        if x.distance(y) < self.epsilon {
            self.horizontal_threshold(x)
        } else {
            self.vertical_threshold(x, y)
        }
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }
}

/// Per-rebuild memo of the PDF-dependent parts of an [`AvmemPredicate`].
///
/// The naive evaluation of Eq. 1 over all `N²` ordered pairs recomputes
/// `p(av(y))` for every vertical pair and the two band integrals behind
/// `horizontal_threshold` for every in-band pair. Both only depend on a
/// *bucket* of the discretized PDF (vertical) or on the source node's own
/// availability (horizontal), so a converged rebuild can hoist them:
///
/// * [`AvmemPredicate::rebuild_memo`] — once per rebuild: per-bucket
///   vertical threshold tables;
/// * [`ThresholdMemo::source`] — once per source node: the horizontal
///   threshold `f(av(x), ·)`.
///
/// The memoized thresholds are **bit-for-bit identical** to
/// [`MembershipPredicate::threshold`]: the same floating-point
/// expressions are evaluated in the same order, only earlier.
#[derive(Debug, Clone)]
pub struct ThresholdMemo<'p> {
    pred: &'p AvmemPredicate,
    vertical: VerticalMemo,
}

#[derive(Debug, Clone)]
enum VerticalMemo {
    /// I.A — no per-pair work to hoist.
    Constant { d1: f64 },
    /// I.B — final quotient per PDF bucket; `.min(1.0)` at query time
    /// (`∞` marks zero-density buckets, which cap at 1.0).
    Logarithmic { threshold: Vec<f64> },
    /// I.C — `c₁·ln N*` numerator and per-bucket `N*·p_b` denominator;
    /// the distance factor stays per-pair.
    Decreasing { numerator: f64, denominator: Vec<f64> },
}

impl AvmemPredicate {
    /// Precomputes the per-bucket vertical threshold tables for one
    /// overlay rebuild.
    pub fn rebuild_memo(&self) -> ThresholdMemo<'_> {
        let buckets = self.pdf.buckets();
        let width = self.pdf.bucket_width();
        let vertical = match self.vertical {
            VerticalRule::Constant { d1 } => VerticalMemo::Constant { d1 },
            VerticalRule::Logarithmic { c1 } => {
                let threshold = (0..buckets)
                    .map(|b| {
                        let density = self.pdf.bucket_mass(b) / width;
                        if density <= 0.0 {
                            f64::INFINITY
                        } else {
                            c1 * self.n_star.ln() / (self.n_star * density)
                        }
                    })
                    .collect();
                VerticalMemo::Logarithmic { threshold }
            }
            VerticalRule::LogarithmicDecreasing { c1 } => VerticalMemo::Decreasing {
                numerator: c1 * self.n_star.ln(),
                denominator: (0..buckets)
                    .map(|b| self.n_star * (self.pdf.bucket_mass(b) / width))
                    .collect(),
            },
        };
        ThresholdMemo {
            pred: self,
            vertical,
        }
    }
}

impl ThresholdMemo<'_> {
    /// The band half-width `ε` of the underlying predicate.
    pub fn epsilon(&self) -> f64 {
        self.pred.epsilon
    }

    /// Vertical thresholds for a candidate sequence when the vertical
    /// rule is *source-independent* (I.A and I.B depend only on the
    /// candidate): one value per candidate, bit-identical to
    /// [`SourceThresholds::vertical`] for every source node. `None` for
    /// rule I.C, whose distance factor is inherently per-pair.
    pub fn source_independent_vertical(
        &self,
        candidates: impl Iterator<Item = Availability>,
    ) -> Option<Vec<f64>> {
        match &self.vertical {
            VerticalMemo::Constant { d1 } => Some(candidates.map(|_| *d1).collect()),
            VerticalMemo::Logarithmic { threshold } => {
                let buckets = self.pred.pdf.buckets();
                Some(
                    candidates
                        .map(|y| {
                            let b = ((y.value() * buckets as f64).floor() as usize)
                                .min(buckets - 1);
                            threshold[b].min(1.0)
                        })
                        .collect(),
                )
            }
            VerticalMemo::Decreasing { .. } => None,
        }
    }

    /// Fixes the source node, computing its horizontal threshold (the
    /// expensive band integrals) exactly once.
    pub fn source(&self, x: Availability) -> SourceThresholds<'_> {
        self.source_with_horizontal(x, self.horizontal(x))
    }

    /// Just the horizontal threshold of a source at `x` — the expensive
    /// band integrals — for callers that cache it per node across many
    /// [`ThresholdMemo::source_with_horizontal`] calls (the event-driven
    /// finalize fast path keeps one per shard-owned node, invalidated on
    /// oracle-epoch advance).
    pub fn horizontal(&self, x: Availability) -> f64 {
        self.pred.horizontal_threshold(x)
    }

    /// Like [`ThresholdMemo::source`] with the horizontal threshold
    /// supplied by the caller; bit-identical to `source(x)` whenever
    /// `horizontal` came from [`ThresholdMemo::horizontal`] at the same
    /// `x` (the value is deterministic, so caching it is free).
    pub fn source_with_horizontal(&self, x: Availability, horizontal: f64) -> SourceThresholds<'_> {
        SourceThresholds {
            epsilon: self.pred.epsilon,
            x,
            horizontal,
            vertical: &self.vertical,
            buckets: self.pred.pdf.buckets(),
        }
    }
}

/// The thresholds of one source node `x`, ready for `O(1)`-per-candidate
/// evaluation (a bucket lookup for vertical candidates, a cached constant
/// for horizontal ones). See [`ThresholdMemo`].
#[derive(Debug, Clone)]
pub struct SourceThresholds<'m> {
    epsilon: f64,
    x: Availability,
    horizontal: f64,
    vertical: &'m VerticalMemo,
    buckets: usize,
}

impl SourceThresholds<'_> {
    /// The source node's availability.
    pub fn availability(&self) -> Availability {
        self.x
    }

    /// The band half-width `ε`.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The memoized horizontal threshold `f(av(x), in-band)`.
    pub fn horizontal(&self) -> f64 {
        self.horizontal
    }

    /// Whether a candidate at `y` falls in the source's horizontal band.
    pub fn in_band(&self, y: Availability) -> bool {
        self.x.distance(y) < self.epsilon
    }

    /// The vertical threshold `f(av(x), av(y))` for an out-of-band `y`.
    pub fn vertical(&self, y: Availability) -> f64 {
        let b = ((y.value() * self.buckets as f64).floor() as usize).min(self.buckets - 1);
        match self.vertical {
            VerticalMemo::Constant { d1 } => *d1,
            VerticalMemo::Logarithmic { threshold } => threshold[b].min(1.0),
            VerticalMemo::Decreasing {
                numerator,
                denominator,
            } => {
                let dist = self.x.distance(y);
                if denominator[b] <= 0.0 || dist <= 0.0 {
                    1.0
                } else {
                    (numerator / (denominator[b] * dist)).min(1.0)
                }
            }
        }
    }

    /// The full sub-predicate value, identical to
    /// [`MembershipPredicate::threshold`] of the memoized predicate.
    pub fn threshold(&self, y: Availability) -> f64 {
        if self.in_band(y) {
            self.horizontal
        } else {
            self.vertical(y)
        }
    }

    /// Eq. 1 with a caller-supplied pair hash: classifies a *distinct*
    /// candidate (callers must skip `y == x` themselves, as
    /// [`MembershipPredicate::classify_hashed`] would).
    pub fn classify_hashed(&self, y: Availability, hash: f64) -> Option<Sliver> {
        if self.in_band(y) {
            (hash <= self.horizontal).then_some(Sliver::Horizontal)
        } else {
            (hash <= self.vertical(y)).then_some(Sliver::Vertical)
        }
    }
}

/// The availability-agnostic baseline: `f(·,·) = p`, a consistent random
/// overlay "like SCAMP or CYCLON" (§2, Fig. 10 of the paper).
///
/// Sliver classification still follows the `±ε` band so the same
/// operation code runs over both overlays.
///
/// # Examples
///
/// ```
/// use avmem::predicate::{MembershipPredicate, RandomPredicate};
///
/// // Expected degree ~2·ln N in a 1000-node system.
/// let pred = RandomPredicate::with_expected_degree(2.0 * 1000f64.ln(), 1000.0);
/// assert!(pred.threshold(
///     avmem_util::Availability::saturating(0.1),
///     avmem_util::Availability::saturating(0.9),
/// ) > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RandomPredicate {
    p: f64,
    epsilon: f64,
}

impl RandomPredicate {
    /// Creates a random predicate with acceptance probability `p` and the
    /// paper's default `ε = 0.1` for sliver classification.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn new(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        RandomPredicate { p, epsilon: 0.1 }
    }

    /// Creates a random predicate whose expected out-degree in a system
    /// of `n_star` nodes is `degree`.
    ///
    /// # Panics
    ///
    /// Panics unless `degree > 0` and `n_star > 1`.
    pub fn with_expected_degree(degree: f64, n_star: f64) -> Self {
        assert!(degree > 0.0, "degree must be positive");
        assert!(n_star > 1.0, "n_star must exceed one");
        RandomPredicate::new((degree / n_star).min(1.0))
    }

    /// The acceptance probability `p`.
    pub fn p(&self) -> f64 {
        self.p
    }
}

impl MembershipPredicate for RandomPredicate {
    fn threshold(&self, _x: Availability, _y: Availability) -> f64 {
        self.p
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn av(v: f64) -> Availability {
        Availability::saturating(v)
    }

    fn info(id: u64, a: f64) -> NodeInfo {
        NodeInfo::new(NodeId::new(id), av(a))
    }

    fn uniform_pred(n_star: f64) -> AvmemPredicate {
        AvmemPredicate::paper_default(n_star, AvailabilityPdf::uniform(10))
    }

    #[test]
    fn sliver_classification_follows_epsilon() {
        let pred = uniform_pred(1000.0);
        assert_eq!(pred.sliver(av(0.5), av(0.55)), Sliver::Horizontal);
        assert_eq!(pred.sliver(av(0.5), av(0.65)), Sliver::Vertical);
        assert_eq!(pred.sliver(av(0.5), av(0.375)), Sliver::Vertical);
        // Exactly at ε with representable values (ε itself, 0.1, is not
        // exactly representable; use distance 0.125 vs ε = 0.125).
        let pred = AvmemPredicate::new(
            0.125,
            1000.0,
            VerticalRule::Logarithmic { c1: 2.0 },
            HorizontalRule::LogarithmicConstant { c2: 2.0 },
            AvailabilityPdf::uniform(8),
        );
        assert_eq!(pred.sliver(av(0.25), av(0.375)), Sliver::Vertical);
    }

    #[test]
    fn membership_is_consistent() {
        let pred = uniform_pred(1442.0);
        let x = info(10, 0.3);
        let y = info(20, 0.8);
        let first = pred.member(x, y);
        for _ in 0..10 {
            assert_eq!(pred.member(x, y), first);
        }
    }

    #[test]
    fn membership_is_directed() {
        // M(x, y) and M(y, x) are independent coins; over many pairs they
        // must disagree sometimes.
        let pred = uniform_pred(200.0);
        let mut asymmetric = 0;
        for i in 0..200u64 {
            let x = info(i, 0.3);
            let y = info(i + 1000, 0.8);
            if pred.member(x, y) != pred.member(y, x) {
                asymmetric += 1;
            }
        }
        assert!(asymmetric > 0, "membership never asymmetric");
    }

    #[test]
    fn self_is_never_classified() {
        let pred = uniform_pred(100.0);
        let x = info(1, 0.5);
        assert_eq!(pred.classify(x, x), None);
    }

    #[test]
    fn logarithmic_vertical_gives_uniform_coverage() {
        // Theorem 1: expected VS neighbors per availability interval is
        // independent of where the interval lies. With a skewed PDF the
        // *threshold* must counteract density: sparse regions get higher
        // acceptance probability.
        let mut mass = vec![4.0; 5]; // dense low half
        mass.extend(vec![1.0; 5]); // sparse high half
        let pdf = AvailabilityPdf::from_bucket_mass(mass);
        let pred = AvmemPredicate::new(
            0.1,
            1000.0,
            VerticalRule::Logarithmic { c1: 2.0 },
            HorizontalRule::LogarithmicConstant { c2: 2.0 },
            pdf.clone(),
        );
        let x = av(0.05);
        let dense_thr = pred.threshold(x, av(0.35));
        let sparse_thr = pred.threshold(x, av(0.85));
        let ratio = sparse_thr / dense_thr;
        let density_ratio = pdf.density(av(0.35)) / pdf.density(av(0.85));
        assert!(
            (ratio - density_ratio).abs() < 1e-9,
            "threshold ratio {ratio} should equal density ratio {density_ratio}"
        );
    }

    #[test]
    fn expected_vertical_degree_matches_theorem_one() {
        // Under rule I.B with uniform PDF, E[|VS|] ≈ c1·ln N*·(1 − 2ε).
        let n: u64 = 3000;
        let n_star = n as f64;
        let pred = uniform_pred(n_star);
        let x = info(424_242, 0.5);
        // Count accepted vertical neighbors among a synthetic uniform
        // population.
        let mut count = 0.0;
        for i in 0..n {
            let y = info(i, (i as f64 + 0.5) / n_star);
            if pred.sliver(x.availability, y.availability) == Sliver::Vertical
                && pred.member(x, y)
            {
                count += 1.0;
            }
        }
        let expected = DEFAULT_C1 * n_star.ln() * (1.0 - 2.0 * 0.1);
        assert!(
            (count - expected).abs() < expected * 0.5,
            "vertical degree {count}, expected ≈ {expected}"
        );
    }

    #[test]
    fn log_decreasing_prefers_nearby() {
        let pred = AvmemPredicate::new(
            0.1,
            1000.0,
            VerticalRule::LogarithmicDecreasing { c1: 2.0 },
            HorizontalRule::LogarithmicConstant { c2: 2.0 },
            AvailabilityPdf::uniform(10),
        );
        let near = pred.threshold(av(0.5), av(0.62));
        let far = pred.threshold(av(0.5), av(0.95));
        assert!(
            near > far,
            "closer candidates should have higher acceptance: near {near} far {far}"
        );
    }

    #[test]
    fn log_decreasing_is_inverse_distance() {
        let pred = AvmemPredicate::new(
            0.1,
            100_000.0, // large N* so thresholds stay below the 1.0 cap
            VerticalRule::LogarithmicDecreasing { c1: 2.0 },
            HorizontalRule::LogarithmicConstant { c2: 2.0 },
            AvailabilityPdf::uniform(10),
        );
        let t1 = pred.threshold(av(0.1), av(0.3)); // distance 0.2
        let t2 = pred.threshold(av(0.1), av(0.5)); // distance 0.4
        assert!(
            (t1 / t2 - 2.0).abs() < 1e-9,
            "threshold should halve when distance doubles: {t1} vs {t2}"
        );
    }

    #[test]
    fn constant_rules_are_flat() {
        let pred = AvmemPredicate::new(
            0.1,
            1000.0,
            VerticalRule::Constant { d1: 0.02 },
            HorizontalRule::Constant { d2: 0.3 },
            AvailabilityPdf::uniform(10),
        );
        assert_eq!(pred.threshold(av(0.5), av(0.9)), 0.02);
        assert_eq!(pred.threshold(av(0.5), av(0.1)), 0.02);
        assert_eq!(pred.threshold(av(0.5), av(0.55)), 0.3);
    }

    #[test]
    fn constant_for_matches_log_degree() {
        let rule = VerticalRule::constant_for(2.0, 1000.0);
        let VerticalRule::Constant { d1 } = rule else {
            panic!("expected constant rule");
        };
        assert!((d1 - 2.0 * 1000f64.ln() / 1000.0).abs() < 1e-12);
    }

    #[test]
    fn cushion_relaxes_the_test() {
        let pred = uniform_pred(1442.0);
        let x = info(1, 0.2);
        // Find a pair rejected without cushion but accepted with a huge one.
        let mut found = false;
        for i in 0..500u64 {
            let y = info(i + 10, 0.9);
            if !pred.member(x, y) && pred.member_with_cushion(x, y, 1.0) {
                found = true;
                break;
            }
        }
        assert!(found, "cushion=1.0 should accept everything");
    }

    #[test]
    fn horizontal_threshold_caps_at_one_for_thin_bands() {
        // A PDF with an essentially empty band: threshold should hit the
        // 1.0 cap (take every candidate you can find).
        let mut mass = vec![100.0; 10];
        mass[5] = 1e-9;
        let pdf = AvailabilityPdf::from_bucket_mass(mass);
        let pred = AvmemPredicate::new(
            0.05,
            1442.0,
            VerticalRule::Logarithmic { c1: 2.0 },
            HorizontalRule::LogarithmicConstant { c2: 2.0 },
            pdf,
        );
        assert_eq!(pred.threshold(av(0.55), av(0.56)), 1.0);
    }

    #[test]
    fn random_predicate_is_flat_and_consistent() {
        let pred = RandomPredicate::new(0.05);
        assert_eq!(pred.threshold(av(0.1), av(0.9)), 0.05);
        assert_eq!(pred.threshold(av(0.9), av(0.1)), 0.05);
        let x = info(1, 0.1);
        let y = info(2, 0.9);
        assert_eq!(pred.member(x, y), pred.member(x, y));
    }

    #[test]
    fn random_predicate_expected_degree() {
        let n = 2000u64;
        let pred = RandomPredicate::with_expected_degree(15.0, n as f64);
        let x = info(999_999, 0.5);
        let degree = (0..n)
            .filter(|&i| pred.member(x, info(i, 0.5)))
            .count();
        assert!(
            (5..=30).contains(&degree),
            "degree {degree}, expected ≈ 15"
        );
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn bad_epsilon_panics() {
        let _ = AvmemPredicate::new(
            0.0,
            100.0,
            VerticalRule::Logarithmic { c1: 2.0 },
            HorizontalRule::LogarithmicConstant { c2: 2.0 },
            AvailabilityPdf::uniform(10),
        );
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bad_constant_probability_panics() {
        let _ = AvmemPredicate::new(
            0.1,
            100.0,
            VerticalRule::Constant { d1: 1.5 },
            HorizontalRule::LogarithmicConstant { c2: 2.0 },
            AvailabilityPdf::uniform(10),
        );
    }

    #[test]
    fn memo_thresholds_match_direct_evaluation_bit_for_bit() {
        let mut mass = vec![4.0; 3];
        mass.extend(vec![0.5; 4]);
        mass.push(0.0); // a zero-density bucket
        mass.extend(vec![2.0; 2]);
        let pdf = AvailabilityPdf::from_bucket_mass(mass);
        for vertical in [
            VerticalRule::Constant { d1: 0.02 },
            VerticalRule::Logarithmic { c1: 2.5 },
            VerticalRule::LogarithmicDecreasing { c1: 1.5 },
        ] {
            for horizontal in [
                HorizontalRule::Constant { d2: 0.3 },
                HorizontalRule::LogarithmicConstant { c2: 2.0 },
            ] {
                let pred =
                    AvmemPredicate::new(0.1, 1442.0, vertical, horizontal, pdf.clone());
                let memo = pred.rebuild_memo();
                for xi in 0..40 {
                    let x = av(xi as f64 / 39.0);
                    let source = memo.source(x);
                    for yi in 0..40 {
                        let y = av(yi as f64 / 39.0);
                        assert_eq!(
                            source.threshold(y).to_bits(),
                            pred.threshold(x, y).to_bits(),
                            "{vertical:?}/{horizontal:?} at x={x} y={y}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn memo_classification_matches_classify_hashed() {
        let pred = uniform_pred(1442.0);
        let memo = pred.rebuild_memo();
        for i in 0..60u64 {
            let x = info(i, (i as f64 * 0.37) % 1.0);
            let source = memo.source(x.availability);
            for j in 0..60u64 {
                if i == j {
                    continue;
                }
                let y = info(j + 1000, (j as f64 * 0.61) % 1.0);
                let hash = consistent_hash(x.id, y.id);
                assert_eq!(
                    source.classify_hashed(y.availability, hash),
                    pred.classify_hashed(x, y, hash, 0.0),
                );
            }
        }
    }

    #[test]
    fn trait_objects_are_usable() {
        let avmem = uniform_pred(100.0);
        let random = RandomPredicate::new(0.1);
        let preds: Vec<&dyn MembershipPredicate> = vec![&avmem, &random];
        for p in preds {
            let _ = p.classify(info(1, 0.5), info(2, 0.6));
        }
    }
}
