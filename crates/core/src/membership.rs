//! AVMEM membership lists and their maintenance (§3.1 of the paper).
//!
//! Every node keeps two small lists — the horizontal sliver (HS) and
//! vertical sliver (VS) — discovered and maintained by two sub-protocols:
//!
//! * **Discovery** ([`Membership::discover`]): periodically iterate the
//!   shuffled coarse view; for each entry not already a neighbor, query
//!   the availability service and evaluate the AVMEM predicate; insert
//!   into HS or VS on success.
//! * **Refresh** ([`Membership::refresh`]): periodically re-query the
//!   availability of every existing neighbor and re-evaluate the
//!   predicate; evict entries for which `M(x, y)` has become false, and
//!   migrate entries whose sliver changed (availabilities drift over
//!   time). Refresh also re-caches each neighbor's availability — the
//!   cached values are what anycast/multicast forwarding decisions use
//!   ("node x … uses cached values of availabilities for its neighbors",
//!   §3.2).

use avmem_avmon::AvailabilityOracle;
use avmem_sim::SimTime;
use avmem_util::{Availability, NodeId};
use serde::{Deserialize, Serialize};

use crate::predicate::{MembershipPredicate, NodeInfo, Sliver};

/// Which sliver lists an operation may use (§3.2 gives each operation
/// HS-only / VS-only / HS+VS flavors).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SliverScope {
    /// Only horizontal-sliver neighbors.
    HsOnly,
    /// Only vertical-sliver neighbors.
    VsOnly,
    /// Both lists.
    Both,
}

impl SliverScope {
    /// Whether the scope includes the given sliver.
    pub fn includes(self, sliver: Sliver) -> bool {
        match self {
            SliverScope::HsOnly => sliver == Sliver::Horizontal,
            SliverScope::VsOnly => sliver == Sliver::Vertical,
            SliverScope::Both => true,
        }
    }
}

/// One entry of a sliver list.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Neighbor {
    /// The neighbor's identity.
    pub id: NodeId,
    /// The availability cached at the last discovery/refresh; forwarding
    /// decisions read this, *not* a live query (§3.2).
    pub cached_availability: Availability,
    /// When the neighbor entered the list.
    pub added_at: SimTime,
    /// When the cached availability was last validated.
    pub refreshed_at: SimTime,
}

/// Outcome of a refresh pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RefreshOutcome {
    /// Neighbors evicted because the predicate no longer holds (or the
    /// oracle lost track of them).
    pub evicted: usize,
    /// Neighbors moved between HS and VS because their availability
    /// drifted across the band boundary.
    pub migrated: usize,
    /// Neighbors kept (cached availability updated).
    pub kept: usize,
}

/// The HS + VS membership state of one node.
///
/// # Examples
///
/// ```
/// use avmem::membership::{Membership, SliverScope};
/// use avmem::predicate::{AvmemPredicate, NodeInfo};
/// use avmem_avmon::TraceOracle;
/// use avmem_sim::SimTime;
/// use avmem_trace::{AvailabilityPdf, OvernetModel};
/// use avmem_util::NodeId;
///
/// let trace = OvernetModel::default().hosts(100).days(1).generate(1);
/// let oracle = TraceOracle::new(&trace);
/// let sample: Vec<_> = (0..100).map(|i| trace.long_term_availability(i)).collect();
/// let pred = AvmemPredicate::paper_default(100.0, AvailabilityPdf::from_sample(&sample, 10));
///
/// let me = NodeInfo::new(NodeId::new(0), trace.long_term_availability(0));
/// let mut membership = Membership::new(me.id);
/// membership.discover(me, trace.node_ids(), &oracle, &pred, SimTime::ZERO);
/// // Discovery over the full population yields the converged lists.
/// let total = membership.neighbors(SliverScope::Both).count();
/// assert!(total > 0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Membership {
    owner: NodeId,
    hs: Vec<Neighbor>,
    vs: Vec<Neighbor>,
}

impl Membership {
    /// Creates empty lists for `owner`.
    pub fn new(owner: NodeId) -> Self {
        Membership {
            owner,
            hs: Vec::new(),
            vs: Vec::new(),
        }
    }

    /// The owning node.
    pub fn owner(&self) -> NodeId {
        self.owner
    }

    /// The horizontal sliver.
    pub fn hs(&self) -> &[Neighbor] {
        &self.hs
    }

    /// The vertical sliver.
    pub fn vs(&self) -> &[Neighbor] {
        &self.vs
    }

    /// Total neighbor count (HS + VS).
    pub fn len(&self) -> usize {
        self.hs.len() + self.vs.len()
    }

    /// Whether both lists are empty.
    pub fn is_empty(&self) -> bool {
        self.hs.is_empty() && self.vs.is_empty()
    }

    /// Whether `id` is currently a neighbor (either sliver).
    pub fn contains(&self, id: NodeId) -> bool {
        self.hs.iter().any(|n| n.id == id) || self.vs.iter().any(|n| n.id == id)
    }

    /// Iterates neighbors in the given scope (HS first, then VS, each in
    /// insertion order — the deterministic order gossip target selection
    /// relies on).
    pub fn neighbors(&self, scope: SliverScope) -> impl Iterator<Item = &Neighbor> + '_ {
        let hs = matches!(scope, SliverScope::HsOnly | SliverScope::Both);
        let vs = matches!(scope, SliverScope::VsOnly | SliverScope::Both);
        self.hs
            .iter()
            .filter(move |_| hs)
            .chain(self.vs.iter().filter(move |_| vs))
    }

    /// Drops all neighbors (a node that lost its soft state).
    pub fn clear(&mut self) {
        self.hs.clear();
        self.vs.clear();
    }

    /// Inserts an already-classified neighbor, skipping duplicates and
    /// self-entries. Returns whether the entry was inserted.
    ///
    /// This is the low-level hook used by drivers that evaluate the
    /// predicate themselves (e.g. with a precomputed hash matrix);
    /// [`Membership::discover`] is the self-contained path.
    pub fn insert(&mut self, neighbor: Neighbor, sliver: Sliver) -> bool {
        if neighbor.id == self.owner || self.contains(neighbor.id) {
            return false;
        }
        match sliver {
            Sliver::Horizontal => self.hs.push(neighbor),
            Sliver::Vertical => self.vs.push(neighbor),
        }
        true
    }

    /// Removes a neighbor from whichever list holds it, returning the
    /// entry and the sliver it occupied.
    pub fn remove(&mut self, id: NodeId) -> Option<(Neighbor, Sliver)> {
        if let Some(pos) = self.hs.iter().position(|n| n.id == id) {
            return Some((self.hs.remove(pos), Sliver::Horizontal));
        }
        if let Some(pos) = self.vs.iter().position(|n| n.id == id) {
            return Some((self.vs.remove(pos), Sliver::Vertical));
        }
        None
    }

    /// Discovery sub-protocol: for each candidate not already a neighbor,
    /// query the oracle and evaluate the predicate; insert on success.
    /// Returns the number of neighbors added.
    ///
    /// `own` is the owner's identity and *its own current availability
    /// estimate* (also obtained from the monitoring service, so the
    /// predicate evaluation is consistent with what third parties see).
    pub fn discover<O, P, I>(
        &mut self,
        own: NodeInfo,
        candidates: I,
        oracle: &O,
        predicate: &P,
        now: SimTime,
    ) -> usize
    where
        O: AvailabilityOracle + ?Sized,
        P: MembershipPredicate + ?Sized,
        I: IntoIterator<Item = NodeId>,
    {
        debug_assert_eq!(own.id, self.owner, "discover called with foreign identity");
        let mut added = 0;
        for candidate in candidates {
            if candidate == self.owner || self.contains(candidate) {
                continue;
            }
            let Some(candidate_av) = oracle.estimate(self.owner, candidate, now) else {
                continue;
            };
            let candidate_info = NodeInfo::new(candidate, candidate_av);
            if let Some(sliver) = predicate.classify(own, candidate_info) {
                let neighbor = Neighbor {
                    id: candidate,
                    cached_availability: candidate_av,
                    added_at: now,
                    refreshed_at: now,
                };
                match sliver {
                    Sliver::Horizontal => self.hs.push(neighbor),
                    Sliver::Vertical => self.vs.push(neighbor),
                }
                added += 1;
            }
        }
        added
    }

    /// Refresh sub-protocol: re-validate every neighbor against fresh
    /// oracle estimates, evicting entries whose predicate became false
    /// and migrating entries whose sliver changed.
    pub fn refresh<O, P>(
        &mut self,
        own: NodeInfo,
        oracle: &O,
        predicate: &P,
        now: SimTime,
    ) -> RefreshOutcome
    where
        O: AvailabilityOracle + ?Sized,
        P: MembershipPredicate + ?Sized,
    {
        debug_assert_eq!(own.id, self.owner, "refresh called with foreign identity");
        let owner = self.owner;
        let mut migrants = Vec::new();
        self.refresh_with(now, &mut migrants, |id| {
            let fresh_av = oracle.estimate(owner, id, now)?;
            let sliver = predicate.classify(own, NodeInfo::new(id, fresh_av))?;
            Some((fresh_av, sliver))
        })
    }

    /// In-place refresh driven by a caller-supplied evaluator: `eval`
    /// returns the neighbor's fresh availability and sliver, or `None` to
    /// evict. Entries are re-validated *in place* — kept neighbors never
    /// leave their list, so there is no remove-then-reinsert churn — and
    /// only sliver migrants move (appended to their new list after both
    /// passes, preserving relative order).
    ///
    /// `migrants` is caller-owned scratch (cleared on entry, drained on
    /// exit) so batch drivers refreshing many nodes reuse one buffer.
    /// Drivers with precomputed pair hashes evaluate the predicate via
    /// [`MembershipPredicate::classify_hashed`] inside `eval`;
    /// [`Membership::refresh`] is the self-contained oracle+predicate
    /// form of the same pass.
    pub fn refresh_with<F>(
        &mut self,
        now: SimTime,
        migrants: &mut Vec<(Neighbor, Sliver)>,
        mut eval: F,
    ) -> RefreshOutcome
    where
        F: FnMut(NodeId) -> Option<(Availability, Sliver)>,
    {
        let mut outcome = RefreshOutcome::default();
        migrants.clear();
        let mut revalidate = |list: &mut Vec<Neighbor>,
                              expected: Sliver,
                              migrants: &mut Vec<(Neighbor, Sliver)>| {
            list.retain_mut(|neighbor| match eval(neighbor.id) {
                None => {
                    outcome.evicted += 1;
                    false
                }
                Some((fresh_av, sliver)) => {
                    neighbor.cached_availability = fresh_av;
                    neighbor.refreshed_at = now;
                    if sliver == expected {
                        outcome.kept += 1;
                        true
                    } else {
                        migrants.push((*neighbor, sliver));
                        outcome.migrated += 1;
                        false
                    }
                }
            });
        };

        revalidate(&mut self.hs, Sliver::Horizontal, migrants);
        revalidate(&mut self.vs, Sliver::Vertical, migrants);
        for (neighbor, sliver) in migrants.drain(..) {
            match sliver {
                Sliver::Horizontal => self.hs.push(neighbor),
                Sliver::Vertical => self.vs.push(neighbor),
            }
        }
        outcome
    }

    /// Marks every neighbor re-validated at `now` without re-evaluating
    /// anything: sets `refreshed_at = now` on all entries, leaving cached
    /// availabilities and list order untouched. Returns the number of
    /// entries touched.
    ///
    /// This is the refresh fast path for drivers that can prove a full
    /// [`Membership::refresh_with`] pass would change nothing but the
    /// timestamps: when the oracle has not advanced since every entry was
    /// last classified, each `eval` returns the same availability and
    /// sliver it did then — no evictions, no migrations, identical cached
    /// values — so skipping the per-neighbor work is bit-identical.
    pub fn touch_refreshed(&mut self, now: SimTime) -> usize {
        for neighbor in self.hs.iter_mut().chain(self.vs.iter_mut()) {
            neighbor.refreshed_at = now;
        }
        self.hs.len() + self.vs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avmem_sim::SimTime;
    use avmem_trace::AvailabilityPdf;
    use avmem_util::Availability;

    use crate::predicate::AvmemPredicate;

    /// An oracle over a mutable table, for precise control in tests.
    #[derive(Debug, Default)]
    struct TableOracle {
        table: std::collections::HashMap<u64, f64>,
    }

    impl TableOracle {
        fn set(&mut self, id: u64, av: f64) {
            self.table.insert(id, av);
        }

        fn remove(&mut self, id: u64) {
            self.table.remove(&id);
        }
    }

    impl AvailabilityOracle for TableOracle {
        fn estimate(
            &self,
            _querier: NodeId,
            target: NodeId,
            _now: SimTime,
        ) -> Option<Availability> {
            self.table
                .get(&target.raw())
                .map(|&v| Availability::saturating(v))
        }
    }

    fn take_all_predicate() -> AvmemPredicate {
        // d1 = d2 = 1.0: every candidate passes; classification only by band.
        AvmemPredicate::new(
            0.1,
            100.0,
            crate::predicate::VerticalRule::Constant { d1: 1.0 },
            crate::predicate::HorizontalRule::Constant { d2: 1.0 },
            AvailabilityPdf::uniform(10),
        )
    }

    fn me() -> NodeInfo {
        NodeInfo::new(NodeId::new(0), Availability::saturating(0.5))
    }

    #[test]
    fn discover_classifies_into_slivers() {
        let mut oracle = TableOracle::default();
        oracle.set(1, 0.52); // horizontal
        oracle.set(2, 0.9); // vertical
        let pred = take_all_predicate();
        let mut m = Membership::new(NodeId::new(0));
        let added = m.discover(
            me(),
            [NodeId::new(1), NodeId::new(2)],
            &oracle,
            &pred,
            SimTime::ZERO,
        );
        assert_eq!(added, 2);
        assert_eq!(m.hs().len(), 1);
        assert_eq!(m.vs().len(), 1);
        assert_eq!(m.hs()[0].id, NodeId::new(1));
        assert_eq!(m.vs()[0].id, NodeId::new(2));
    }

    #[test]
    fn discover_skips_self_unknown_and_duplicates() {
        let mut oracle = TableOracle::default();
        oracle.set(1, 0.5);
        let pred = take_all_predicate();
        let mut m = Membership::new(NodeId::new(0));
        let added = m.discover(
            me(),
            [NodeId::new(0), NodeId::new(1), NodeId::new(1), NodeId::new(9)],
            &oracle,
            &pred,
            SimTime::ZERO,
        );
        // self skipped, duplicate skipped, id 9 unknown to oracle.
        assert_eq!(added, 1);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn refresh_evicts_when_oracle_forgets() {
        let mut oracle = TableOracle::default();
        oracle.set(1, 0.52);
        let pred = take_all_predicate();
        let mut m = Membership::new(NodeId::new(0));
        m.discover(me(), [NodeId::new(1)], &oracle, &pred, SimTime::ZERO);
        oracle.remove(1);
        let outcome = m.refresh(me(), &oracle, &pred, SimTime::from_millis(1));
        assert_eq!(outcome.evicted, 1);
        assert!(m.is_empty());
    }

    #[test]
    fn refresh_migrates_across_band_boundary() {
        let mut oracle = TableOracle::default();
        oracle.set(1, 0.52);
        let pred = take_all_predicate();
        let mut m = Membership::new(NodeId::new(0));
        m.discover(me(), [NodeId::new(1)], &oracle, &pred, SimTime::ZERO);
        assert_eq!(m.hs().len(), 1);
        // Availability drifts out of the ±0.1 band.
        oracle.set(1, 0.8);
        let outcome = m.refresh(me(), &oracle, &pred, SimTime::from_millis(1));
        assert_eq!(outcome.migrated, 1);
        assert_eq!(m.hs().len(), 0);
        assert_eq!(m.vs().len(), 1);
        assert_eq!(m.vs()[0].cached_availability.value(), 0.8);
    }

    #[test]
    fn refresh_updates_cached_availability() {
        let mut oracle = TableOracle::default();
        oracle.set(1, 0.52);
        let pred = take_all_predicate();
        let mut m = Membership::new(NodeId::new(0));
        m.discover(me(), [NodeId::new(1)], &oracle, &pred, SimTime::ZERO);
        oracle.set(1, 0.55);
        let later = SimTime::from_millis(60_000);
        let outcome = m.refresh(me(), &oracle, &pred, later);
        assert_eq!(outcome.kept, 1);
        assert_eq!(m.hs()[0].cached_availability.value(), 0.55);
        assert_eq!(m.hs()[0].refreshed_at, later);
        assert_eq!(m.hs()[0].added_at, SimTime::ZERO);
    }

    #[test]
    fn refresh_evicts_on_predicate_violation() {
        // Predicate that accepts only horizontal-band members.
        let pred = AvmemPredicate::new(
            0.1,
            100.0,
            crate::predicate::VerticalRule::Constant { d1: 0.0 },
            crate::predicate::HorizontalRule::Constant { d2: 1.0 },
            AvailabilityPdf::uniform(10),
        );
        let mut oracle = TableOracle::default();
        oracle.set(1, 0.52);
        let mut m = Membership::new(NodeId::new(0));
        m.discover(me(), [NodeId::new(1)], &oracle, &pred, SimTime::ZERO);
        assert_eq!(m.hs().len(), 1);
        // Drift out of band: vertical rule rejects everything → eviction,
        // within one refresh (the paper's "worst case 1 protocol period").
        oracle.set(1, 0.9);
        let outcome = m.refresh(me(), &oracle, &pred, SimTime::from_millis(1));
        assert_eq!(outcome.evicted, 1);
        assert!(m.is_empty());
    }

    #[test]
    fn refresh_with_keeps_survivors_in_place() {
        let mut m = Membership::new(NodeId::new(0));
        let neighbor = |id: u64, av: f64| Neighbor {
            id: NodeId::new(id),
            cached_availability: Availability::saturating(av),
            added_at: SimTime::ZERO,
            refreshed_at: SimTime::ZERO,
        };
        for id in [1, 2, 3] {
            m.insert(neighbor(id, 0.5), Sliver::Horizontal);
        }
        m.insert(neighbor(4, 0.9), Sliver::Vertical);
        let later = SimTime::from_millis(5);
        let mut migrants = vec![(neighbor(9, 0.1), Sliver::Vertical)]; // stale scratch
        let outcome = m.refresh_with(later, &mut migrants, |id| match id.raw() {
            1 => Some((Availability::saturating(0.51), Sliver::Horizontal)),
            2 => None,                                                // evict
            3 => Some((Availability::saturating(0.95), Sliver::Vertical)), // migrate
            4 => Some((Availability::saturating(0.91), Sliver::Vertical)),
            _ => panic!("unexpected neighbor"),
        });
        assert_eq!(outcome, RefreshOutcome { evicted: 1, migrated: 1, kept: 2 });
        // Kept entries stay in place (no remove/reinsert cycling); the
        // migrant lands after the retained VS entries.
        let hs: Vec<u64> = m.hs().iter().map(|n| n.id.raw()).collect();
        let vs: Vec<u64> = m.vs().iter().map(|n| n.id.raw()).collect();
        assert_eq!(hs, vec![1]);
        assert_eq!(vs, vec![4, 3]);
        assert_eq!(m.hs()[0].cached_availability.value(), 0.51);
        assert_eq!(m.hs()[0].refreshed_at, later);
        assert!(migrants.is_empty(), "scratch must be drained for reuse");
    }

    #[test]
    fn scope_filters_neighbors() {
        let mut oracle = TableOracle::default();
        oracle.set(1, 0.52);
        oracle.set(2, 0.9);
        let pred = take_all_predicate();
        let mut m = Membership::new(NodeId::new(0));
        m.discover(
            me(),
            [NodeId::new(1), NodeId::new(2)],
            &oracle,
            &pred,
            SimTime::ZERO,
        );
        assert_eq!(m.neighbors(SliverScope::HsOnly).count(), 1);
        assert_eq!(m.neighbors(SliverScope::VsOnly).count(), 1);
        assert_eq!(m.neighbors(SliverScope::Both).count(), 2);
    }

    #[test]
    fn scope_includes_matches_slivers() {
        assert!(SliverScope::HsOnly.includes(Sliver::Horizontal));
        assert!(!SliverScope::HsOnly.includes(Sliver::Vertical));
        assert!(SliverScope::VsOnly.includes(Sliver::Vertical));
        assert!(!SliverScope::VsOnly.includes(Sliver::Horizontal));
        assert!(SliverScope::Both.includes(Sliver::Horizontal));
        assert!(SliverScope::Both.includes(Sliver::Vertical));
    }

    #[test]
    fn insert_rejects_self_and_duplicates() {
        let mut m = Membership::new(NodeId::new(0));
        let neighbor = |id: u64| Neighbor {
            id: NodeId::new(id),
            cached_availability: Availability::saturating(0.5),
            added_at: SimTime::ZERO,
            refreshed_at: SimTime::ZERO,
        };
        assert!(!m.insert(neighbor(0), Sliver::Horizontal)); // self
        assert!(m.insert(neighbor(1), Sliver::Horizontal));
        assert!(!m.insert(neighbor(1), Sliver::Vertical)); // duplicate
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn remove_reports_sliver() {
        let mut m = Membership::new(NodeId::new(0));
        let neighbor = |id: u64| Neighbor {
            id: NodeId::new(id),
            cached_availability: Availability::saturating(0.5),
            added_at: SimTime::ZERO,
            refreshed_at: SimTime::ZERO,
        };
        m.insert(neighbor(1), Sliver::Horizontal);
        m.insert(neighbor(2), Sliver::Vertical);
        assert_eq!(m.remove(NodeId::new(2)).unwrap().1, Sliver::Vertical);
        assert_eq!(m.remove(NodeId::new(1)).unwrap().1, Sliver::Horizontal);
        assert!(m.remove(NodeId::new(1)).is_none());
        assert!(m.is_empty());
    }

    #[test]
    fn neighbors_iterate_hs_before_vs() {
        let mut m = Membership::new(NodeId::new(0));
        let neighbor = |id: u64| Neighbor {
            id: NodeId::new(id),
            cached_availability: Availability::saturating(0.5),
            added_at: SimTime::ZERO,
            refreshed_at: SimTime::ZERO,
        };
        m.insert(neighbor(5), Sliver::Vertical);
        m.insert(neighbor(3), Sliver::Horizontal);
        let order: Vec<u64> = m
            .neighbors(SliverScope::Both)
            .map(|n| n.id.raw())
            .collect();
        assert_eq!(order, vec![3, 5]);
    }

    #[test]
    fn clear_empties_lists() {
        let mut oracle = TableOracle::default();
        oracle.set(1, 0.52);
        let pred = take_all_predicate();
        let mut m = Membership::new(NodeId::new(0));
        m.discover(me(), [NodeId::new(1)], &oracle, &pred, SimTime::ZERO);
        m.clear();
        assert!(m.is_empty());
    }
}
