//! AVMEM membership lists and their maintenance (§3.1 of the paper).
//!
//! Every node keeps two small lists — the horizontal sliver (HS) and
//! vertical sliver (VS) — discovered and maintained by two sub-protocols:
//!
//! * **Discovery** ([`Membership::discover`]): periodically iterate the
//!   shuffled coarse view; for each entry not already a neighbor, query
//!   the availability service and evaluate the AVMEM predicate; insert
//!   into HS or VS on success.
//! * **Refresh** ([`Membership::refresh`]): periodically re-query the
//!   availability of every existing neighbor and re-evaluate the
//!   predicate; evict entries for which `M(x, y)` has become false, and
//!   migrate entries whose sliver changed (availabilities drift over
//!   time). Refresh also re-caches each neighbor's availability — the
//!   cached values are what anycast/multicast forwarding decisions use
//!   ("node x … uses cached values of availabilities for its neighbors",
//!   §3.2).
//!
//! # Storage
//!
//! Both slivers live in one struct-of-arrays block — `ids: Vec<u32>`
//! (index-space node ids), `avs: Vec<Availability>`, and byte-packed
//! [`Stamp`]s (compact u32-millisecond added/refreshed instants) — with
//! the horizontal sliver occupying the first `hs_len` slots. That is
//! 20 bytes per neighbor instead of the 32 of the former
//! `Vec<Neighbor>` pair, the dominant term of resident-set size at 10⁶
//! hosts. The public API still speaks [`Neighbor`] (materialized on the
//! fly); ids above `u32::MAX` are rejected by the index-space contract.

use avmem_avmon::AvailabilityOracle;
use avmem_sim::SimTime;
use avmem_util::{Availability, NodeId};
use serde::{Deserialize, Serialize};

use crate::predicate::{MembershipPredicate, NodeInfo, Sliver};

/// Which sliver lists an operation may use (§3.2 gives each operation
/// HS-only / VS-only / HS+VS flavors).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SliverScope {
    /// Only horizontal-sliver neighbors.
    HsOnly,
    /// Only vertical-sliver neighbors.
    VsOnly,
    /// Both lists.
    Both,
}

impl SliverScope {
    /// Whether the scope includes the given sliver.
    pub fn includes(self, sliver: Sliver) -> bool {
        match self {
            SliverScope::HsOnly => sliver == Sliver::Horizontal,
            SliverScope::VsOnly => sliver == Sliver::Vertical,
            SliverScope::Both => true,
        }
    }
}

/// One entry of a sliver list.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Neighbor {
    /// The neighbor's identity.
    pub id: NodeId,
    /// The availability cached at the last discovery/refresh; forwarding
    /// decisions read this, *not* a live query (§3.2).
    pub cached_availability: Availability,
    /// When the neighbor entered the list.
    pub added_at: SimTime,
    /// When the cached availability was last validated.
    pub refreshed_at: SimTime,
}

/// Byte-packed added/refreshed instants of one slot (compact
/// u32-millisecond stamps, see [`SimTime::as_compact_ms`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct Stamp {
    added_ms: u32,
    refreshed_ms: u32,
}

/// Outcome of a refresh pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RefreshOutcome {
    /// Neighbors evicted because the predicate no longer holds (or the
    /// oracle lost track of them).
    pub evicted: usize,
    /// Neighbors moved between HS and VS because their availability
    /// drifted across the band boundary.
    pub migrated: usize,
    /// Neighbors kept (cached availability updated).
    pub kept: usize,
}

#[inline]
fn packed_id(id: NodeId) -> u32 {
    u32::try_from(id.raw()).expect("membership ids are index-space (must fit u32)")
}

/// The HS + VS membership state of one node.
///
/// # Examples
///
/// ```
/// use avmem::membership::{Membership, SliverScope};
/// use avmem::predicate::{AvmemPredicate, NodeInfo};
/// use avmem_avmon::TraceOracle;
/// use avmem_sim::SimTime;
/// use avmem_trace::{AvailabilityPdf, OvernetModel};
/// use avmem_util::NodeId;
///
/// let trace = OvernetModel::default().hosts(100).days(1).generate(1);
/// let oracle = TraceOracle::new(&trace);
/// let sample: Vec<_> = (0..100).map(|i| trace.long_term_availability(i)).collect();
/// let pred = AvmemPredicate::paper_default(100.0, AvailabilityPdf::from_sample(&sample, 10));
///
/// let me = NodeInfo::new(NodeId::new(0), trace.long_term_availability(0));
/// let mut membership = Membership::new(me.id);
/// membership.discover(me, trace.node_ids(), &oracle, &pred, SimTime::ZERO);
/// // Discovery over the full population yields the converged lists.
/// let total = membership.neighbors(SliverScope::Both).count();
/// assert!(total > 0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Membership {
    owner: NodeId,
    /// `[HS | VS]`: slots `0..hs_len` are horizontal, the rest vertical.
    ids: Vec<u32>,
    avs: Vec<Availability>,
    stamps: Vec<Stamp>,
    hs_len: u32,
}

impl Membership {
    /// Creates empty lists for `owner`.
    pub fn new(owner: NodeId) -> Self {
        Membership {
            owner,
            ids: Vec::new(),
            avs: Vec::new(),
            stamps: Vec::new(),
            hs_len: 0,
        }
    }

    /// The owning node.
    pub fn owner(&self) -> NodeId {
        self.owner
    }

    #[inline]
    fn neighbor_at(&self, pos: usize) -> Neighbor {
        Neighbor {
            id: NodeId::new(u64::from(self.ids[pos])),
            cached_availability: self.avs[pos],
            added_at: SimTime::from_compact_ms(self.stamps[pos].added_ms),
            refreshed_at: SimTime::from_compact_ms(self.stamps[pos].refreshed_ms),
        }
    }

    /// The horizontal sliver, in insertion order.
    pub fn hs(&self) -> impl Iterator<Item = Neighbor> + '_ {
        (0..self.hs_len as usize).map(|pos| self.neighbor_at(pos))
    }

    /// The vertical sliver, in insertion order.
    pub fn vs(&self) -> impl Iterator<Item = Neighbor> + '_ {
        (self.hs_len as usize..self.ids.len()).map(|pos| self.neighbor_at(pos))
    }

    /// Horizontal-sliver entry count.
    pub fn hs_len(&self) -> usize {
        self.hs_len as usize
    }

    /// Vertical-sliver entry count.
    pub fn vs_len(&self) -> usize {
        self.ids.len() - self.hs_len as usize
    }

    /// Total neighbor count (HS + VS).
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether both lists are empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Whether `id` is currently a neighbor (either sliver).
    pub fn contains(&self, id: NodeId) -> bool {
        match u32::try_from(id.raw()) {
            Ok(raw) => self.ids.contains(&raw),
            Err(_) => false,
        }
    }

    /// Iterates neighbors in the given scope (HS first, then VS, each in
    /// insertion order — the deterministic order gossip target selection
    /// relies on).
    pub fn neighbors(&self, scope: SliverScope) -> impl Iterator<Item = Neighbor> + '_ {
        let (start, end) = match scope {
            SliverScope::HsOnly => (0, self.hs_len as usize),
            SliverScope::VsOnly => (self.hs_len as usize, self.ids.len()),
            SliverScope::Both => (0, self.ids.len()),
        };
        (start..end).map(|pos| self.neighbor_at(pos))
    }

    /// Iterates neighbor ids in the given scope without materializing
    /// [`Neighbor`]s — the cheap form for degree/health accounting.
    pub fn neighbor_ids(&self, scope: SliverScope) -> impl Iterator<Item = NodeId> + '_ {
        let (start, end) = match scope {
            SliverScope::HsOnly => (0, self.hs_len as usize),
            SliverScope::VsOnly => (self.hs_len as usize, self.ids.len()),
            SliverScope::Both => (0, self.ids.len()),
        };
        self.ids[start..end].iter().map(|&id| NodeId::new(u64::from(id)))
    }

    /// Drops all neighbors (a node that lost its soft state).
    pub fn clear(&mut self) {
        self.ids.clear();
        self.avs.clear();
        self.stamps.clear();
        self.hs_len = 0;
    }

    /// Appends to the end of the HS region (slot `hs_len`), preserving
    /// both slivers' relative orders.
    fn push_hs(&mut self, neighbor: Neighbor) {
        let pos = self.hs_len as usize;
        self.ids.insert(pos, packed_id(neighbor.id));
        self.avs.insert(pos, neighbor.cached_availability);
        self.stamps.insert(
            pos,
            Stamp {
                added_ms: neighbor.added_at.as_compact_ms(),
                refreshed_ms: neighbor.refreshed_at.as_compact_ms(),
            },
        );
        self.hs_len += 1;
    }

    /// Appends to the end of the VS region (the arrays' tail).
    fn push_vs(&mut self, neighbor: Neighbor) {
        self.ids.push(packed_id(neighbor.id));
        self.avs.push(neighbor.cached_availability);
        self.stamps.push(Stamp {
            added_ms: neighbor.added_at.as_compact_ms(),
            refreshed_ms: neighbor.refreshed_at.as_compact_ms(),
        });
    }

    /// Inserts an already-classified neighbor, skipping duplicates and
    /// self-entries. Returns whether the entry was inserted.
    ///
    /// This is the low-level hook used by drivers that evaluate the
    /// predicate themselves (e.g. with a precomputed hash matrix);
    /// [`Membership::discover`] is the self-contained path.
    pub fn insert(&mut self, neighbor: Neighbor, sliver: Sliver) -> bool {
        if neighbor.id == self.owner || self.contains(neighbor.id) {
            return false;
        }
        match sliver {
            Sliver::Horizontal => self.push_hs(neighbor),
            Sliver::Vertical => self.push_vs(neighbor),
        }
        true
    }

    /// Removes a neighbor from whichever list holds it, returning the
    /// entry and the sliver it occupied.
    pub fn remove(&mut self, id: NodeId) -> Option<(Neighbor, Sliver)> {
        let raw = u32::try_from(id.raw()).ok()?;
        let pos = self.ids.iter().position(|&e| e == raw)?;
        let neighbor = self.neighbor_at(pos);
        let sliver = if pos < self.hs_len as usize {
            self.hs_len -= 1;
            Sliver::Horizontal
        } else {
            Sliver::Vertical
        };
        self.ids.remove(pos);
        self.avs.remove(pos);
        self.stamps.remove(pos);
        Some((neighbor, sliver))
    }

    /// Discovery sub-protocol: for each candidate not already a neighbor,
    /// query the oracle and evaluate the predicate; insert on success.
    /// Returns the number of neighbors added.
    ///
    /// `own` is the owner's identity and *its own current availability
    /// estimate* (also obtained from the monitoring service, so the
    /// predicate evaluation is consistent with what third parties see).
    pub fn discover<O, P, I>(
        &mut self,
        own: NodeInfo,
        candidates: I,
        oracle: &O,
        predicate: &P,
        now: SimTime,
    ) -> usize
    where
        O: AvailabilityOracle + ?Sized,
        P: MembershipPredicate + ?Sized,
        I: IntoIterator<Item = NodeId>,
    {
        debug_assert_eq!(own.id, self.owner, "discover called with foreign identity");
        let mut added = 0;
        for candidate in candidates {
            if candidate == self.owner || self.contains(candidate) {
                continue;
            }
            let Some(candidate_av) = oracle.estimate(self.owner, candidate, now) else {
                continue;
            };
            let candidate_info = NodeInfo::new(candidate, candidate_av);
            if let Some(sliver) = predicate.classify(own, candidate_info) {
                let neighbor = Neighbor {
                    id: candidate,
                    cached_availability: candidate_av,
                    added_at: now,
                    refreshed_at: now,
                };
                match sliver {
                    Sliver::Horizontal => self.push_hs(neighbor),
                    Sliver::Vertical => self.push_vs(neighbor),
                }
                added += 1;
            }
        }
        added
    }

    /// Refresh sub-protocol: re-validate every neighbor against fresh
    /// oracle estimates, evicting entries whose predicate became false
    /// and migrating entries whose sliver changed.
    pub fn refresh<O, P>(
        &mut self,
        own: NodeInfo,
        oracle: &O,
        predicate: &P,
        now: SimTime,
    ) -> RefreshOutcome
    where
        O: AvailabilityOracle + ?Sized,
        P: MembershipPredicate + ?Sized,
    {
        debug_assert_eq!(own.id, self.owner, "refresh called with foreign identity");
        let owner = self.owner;
        let mut migrants = Vec::new();
        self.refresh_with(now, &mut migrants, |id| {
            let fresh_av = oracle.estimate(owner, id, now)?;
            let sliver = predicate.classify(own, NodeInfo::new(id, fresh_av))?;
            Some((fresh_av, sliver))
        })
    }

    /// In-place refresh driven by a caller-supplied evaluator: `eval`
    /// returns the neighbor's fresh availability and sliver, or `None` to
    /// evict. Entries are re-validated *in place* — kept neighbors never
    /// leave their list, so there is no remove-then-reinsert churn — and
    /// only sliver migrants move (appended to their new list after both
    /// passes, preserving relative order).
    ///
    /// `migrants` is caller-owned scratch (cleared on entry, drained on
    /// exit) so batch drivers refreshing many nodes reuse one buffer.
    /// Drivers with precomputed pair hashes evaluate the predicate via
    /// [`MembershipPredicate::classify_hashed`] inside `eval`;
    /// [`Membership::refresh`] is the self-contained oracle+predicate
    /// form of the same pass.
    pub fn refresh_with<F>(
        &mut self,
        now: SimTime,
        migrants: &mut Vec<(Neighbor, Sliver)>,
        mut eval: F,
    ) -> RefreshOutcome
    where
        F: FnMut(NodeId) -> Option<(Availability, Sliver)>,
    {
        let mut outcome = RefreshOutcome::default();
        migrants.clear();
        let now_ms = now.as_compact_ms();
        let hs_end = self.hs_len as usize;
        let total = self.ids.len();
        // Single compaction sweep over `[HS | VS]`: kept entries slide to
        // the write cursor (order preserved within each region), evicted
        // entries vanish, migrants are parked in `migrants` and appended
        // to their new region afterwards — the same final layout as the
        // old per-list `retain_mut` + append scheme.
        let mut write = 0usize;
        let mut hs_kept = 0usize;
        for read in 0..total {
            let expected = if read < hs_end {
                Sliver::Horizontal
            } else {
                Sliver::Vertical
            };
            let id = NodeId::new(u64::from(self.ids[read]));
            match eval(id) {
                None => {
                    outcome.evicted += 1;
                }
                Some((fresh_av, sliver)) => {
                    if sliver == expected {
                        outcome.kept += 1;
                        self.ids[write] = self.ids[read];
                        self.avs[write] = fresh_av;
                        self.stamps[write] = Stamp {
                            added_ms: self.stamps[read].added_ms,
                            refreshed_ms: now_ms,
                        };
                        if expected == Sliver::Horizontal {
                            hs_kept += 1;
                        }
                        write += 1;
                    } else {
                        outcome.migrated += 1;
                        migrants.push((
                            Neighbor {
                                id,
                                cached_availability: fresh_av,
                                added_at: SimTime::from_compact_ms(self.stamps[read].added_ms),
                                refreshed_at: now,
                            },
                            sliver,
                        ));
                    }
                }
            }
        }
        self.ids.truncate(write);
        self.avs.truncate(write);
        self.stamps.truncate(write);
        self.hs_len = hs_kept as u32;
        for (neighbor, sliver) in migrants.drain(..) {
            match sliver {
                Sliver::Horizontal => self.push_hs(neighbor),
                Sliver::Vertical => self.push_vs(neighbor),
            }
        }
        outcome
    }

    /// Marks every neighbor re-validated at `now` without re-evaluating
    /// anything: sets `refreshed_at = now` on all entries, leaving cached
    /// availabilities and list order untouched. Returns the number of
    /// entries touched.
    ///
    /// This is the refresh fast path for drivers that can prove a full
    /// [`Membership::refresh_with`] pass would change nothing but the
    /// timestamps: when the oracle has not advanced since every entry was
    /// last classified, each `eval` returns the same availability and
    /// sliver it did then — no evictions, no migrations, identical cached
    /// values — so skipping the per-neighbor work is bit-identical.
    pub fn touch_refreshed(&mut self, now: SimTime) -> usize {
        let now_ms = now.as_compact_ms();
        for stamp in &mut self.stamps {
            stamp.refreshed_ms = now_ms;
        }
        self.ids.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avmem_sim::SimTime;
    use avmem_trace::AvailabilityPdf;
    use avmem_util::Availability;

    use crate::predicate::AvmemPredicate;

    /// An oracle over a mutable table, for precise control in tests.
    #[derive(Debug, Default)]
    struct TableOracle {
        table: std::collections::HashMap<u64, f64>,
    }

    impl TableOracle {
        fn set(&mut self, id: u64, av: f64) {
            self.table.insert(id, av);
        }

        fn remove(&mut self, id: u64) {
            self.table.remove(&id);
        }
    }

    impl AvailabilityOracle for TableOracle {
        fn estimate(
            &self,
            _querier: NodeId,
            target: NodeId,
            _now: SimTime,
        ) -> Option<Availability> {
            self.table
                .get(&target.raw())
                .map(|&v| Availability::saturating(v))
        }
    }

    fn take_all_predicate() -> AvmemPredicate {
        // d1 = d2 = 1.0: every candidate passes; classification only by band.
        AvmemPredicate::new(
            0.1,
            100.0,
            crate::predicate::VerticalRule::Constant { d1: 1.0 },
            crate::predicate::HorizontalRule::Constant { d2: 1.0 },
            AvailabilityPdf::uniform(10),
        )
    }

    fn me() -> NodeInfo {
        NodeInfo::new(NodeId::new(0), Availability::saturating(0.5))
    }

    fn hs_vec(m: &Membership) -> Vec<Neighbor> {
        m.hs().collect()
    }

    fn vs_vec(m: &Membership) -> Vec<Neighbor> {
        m.vs().collect()
    }

    #[test]
    fn discover_classifies_into_slivers() {
        let mut oracle = TableOracle::default();
        oracle.set(1, 0.52); // horizontal
        oracle.set(2, 0.9); // vertical
        let pred = take_all_predicate();
        let mut m = Membership::new(NodeId::new(0));
        let added = m.discover(
            me(),
            [NodeId::new(1), NodeId::new(2)],
            &oracle,
            &pred,
            SimTime::ZERO,
        );
        assert_eq!(added, 2);
        assert_eq!(m.hs_len(), 1);
        assert_eq!(m.vs_len(), 1);
        assert_eq!(hs_vec(&m)[0].id, NodeId::new(1));
        assert_eq!(vs_vec(&m)[0].id, NodeId::new(2));
    }

    #[test]
    fn discover_skips_self_unknown_and_duplicates() {
        let mut oracle = TableOracle::default();
        oracle.set(1, 0.5);
        let pred = take_all_predicate();
        let mut m = Membership::new(NodeId::new(0));
        let added = m.discover(
            me(),
            [NodeId::new(0), NodeId::new(1), NodeId::new(1), NodeId::new(9)],
            &oracle,
            &pred,
            SimTime::ZERO,
        );
        // self skipped, duplicate skipped, id 9 unknown to oracle.
        assert_eq!(added, 1);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn refresh_evicts_when_oracle_forgets() {
        let mut oracle = TableOracle::default();
        oracle.set(1, 0.52);
        let pred = take_all_predicate();
        let mut m = Membership::new(NodeId::new(0));
        m.discover(me(), [NodeId::new(1)], &oracle, &pred, SimTime::ZERO);
        oracle.remove(1);
        let outcome = m.refresh(me(), &oracle, &pred, SimTime::from_millis(1));
        assert_eq!(outcome.evicted, 1);
        assert!(m.is_empty());
    }

    #[test]
    fn refresh_migrates_across_band_boundary() {
        let mut oracle = TableOracle::default();
        oracle.set(1, 0.52);
        let pred = take_all_predicate();
        let mut m = Membership::new(NodeId::new(0));
        m.discover(me(), [NodeId::new(1)], &oracle, &pred, SimTime::ZERO);
        assert_eq!(m.hs_len(), 1);
        // Availability drifts out of the ±0.1 band.
        oracle.set(1, 0.8);
        let outcome = m.refresh(me(), &oracle, &pred, SimTime::from_millis(1));
        assert_eq!(outcome.migrated, 1);
        assert_eq!(m.hs_len(), 0);
        assert_eq!(m.vs_len(), 1);
        assert_eq!(vs_vec(&m)[0].cached_availability.value(), 0.8);
    }

    #[test]
    fn refresh_updates_cached_availability() {
        let mut oracle = TableOracle::default();
        oracle.set(1, 0.52);
        let pred = take_all_predicate();
        let mut m = Membership::new(NodeId::new(0));
        m.discover(me(), [NodeId::new(1)], &oracle, &pred, SimTime::ZERO);
        oracle.set(1, 0.55);
        let later = SimTime::from_millis(60_000);
        let outcome = m.refresh(me(), &oracle, &pred, later);
        assert_eq!(outcome.kept, 1);
        let hs = hs_vec(&m);
        assert_eq!(hs[0].cached_availability.value(), 0.55);
        assert_eq!(hs[0].refreshed_at, later);
        assert_eq!(hs[0].added_at, SimTime::ZERO);
    }

    #[test]
    fn refresh_evicts_on_predicate_violation() {
        // Predicate that accepts only horizontal-band members.
        let pred = AvmemPredicate::new(
            0.1,
            100.0,
            crate::predicate::VerticalRule::Constant { d1: 0.0 },
            crate::predicate::HorizontalRule::Constant { d2: 1.0 },
            AvailabilityPdf::uniform(10),
        );
        let mut oracle = TableOracle::default();
        oracle.set(1, 0.52);
        let mut m = Membership::new(NodeId::new(0));
        m.discover(me(), [NodeId::new(1)], &oracle, &pred, SimTime::ZERO);
        assert_eq!(m.hs_len(), 1);
        // Drift out of band: vertical rule rejects everything → eviction,
        // within one refresh (the paper's "worst case 1 protocol period").
        oracle.set(1, 0.9);
        let outcome = m.refresh(me(), &oracle, &pred, SimTime::from_millis(1));
        assert_eq!(outcome.evicted, 1);
        assert!(m.is_empty());
    }

    #[test]
    fn refresh_with_keeps_survivors_in_place() {
        let mut m = Membership::new(NodeId::new(0));
        let neighbor = |id: u64, av: f64| Neighbor {
            id: NodeId::new(id),
            cached_availability: Availability::saturating(av),
            added_at: SimTime::ZERO,
            refreshed_at: SimTime::ZERO,
        };
        for id in [1, 2, 3] {
            m.insert(neighbor(id, 0.5), Sliver::Horizontal);
        }
        m.insert(neighbor(4, 0.9), Sliver::Vertical);
        let later = SimTime::from_millis(5);
        let mut migrants = vec![(neighbor(9, 0.1), Sliver::Vertical)]; // stale scratch
        let outcome = m.refresh_with(later, &mut migrants, |id| match id.raw() {
            1 => Some((Availability::saturating(0.51), Sliver::Horizontal)),
            2 => None,                                                // evict
            3 => Some((Availability::saturating(0.95), Sliver::Vertical)), // migrate
            4 => Some((Availability::saturating(0.91), Sliver::Vertical)),
            _ => panic!("unexpected neighbor"),
        });
        assert_eq!(outcome, RefreshOutcome { evicted: 1, migrated: 1, kept: 2 });
        // Kept entries stay in place (no remove/reinsert cycling); the
        // migrant lands after the retained VS entries.
        let hs: Vec<u64> = m.hs().map(|n| n.id.raw()).collect();
        let vs: Vec<u64> = m.vs().map(|n| n.id.raw()).collect();
        assert_eq!(hs, vec![1]);
        assert_eq!(vs, vec![4, 3]);
        let first = hs_vec(&m)[0];
        assert_eq!(first.cached_availability.value(), 0.51);
        assert_eq!(first.refreshed_at, later);
        assert!(migrants.is_empty(), "scratch must be drained for reuse");
    }

    #[test]
    fn scope_filters_neighbors() {
        let mut oracle = TableOracle::default();
        oracle.set(1, 0.52);
        oracle.set(2, 0.9);
        let pred = take_all_predicate();
        let mut m = Membership::new(NodeId::new(0));
        m.discover(
            me(),
            [NodeId::new(1), NodeId::new(2)],
            &oracle,
            &pred,
            SimTime::ZERO,
        );
        assert_eq!(m.neighbors(SliverScope::HsOnly).count(), 1);
        assert_eq!(m.neighbors(SliverScope::VsOnly).count(), 1);
        assert_eq!(m.neighbors(SliverScope::Both).count(), 2);
        assert_eq!(m.neighbor_ids(SliverScope::Both).count(), 2);
    }

    #[test]
    fn scope_includes_matches_slivers() {
        assert!(SliverScope::HsOnly.includes(Sliver::Horizontal));
        assert!(!SliverScope::HsOnly.includes(Sliver::Vertical));
        assert!(SliverScope::VsOnly.includes(Sliver::Vertical));
        assert!(!SliverScope::VsOnly.includes(Sliver::Horizontal));
        assert!(SliverScope::Both.includes(Sliver::Horizontal));
        assert!(SliverScope::Both.includes(Sliver::Vertical));
    }

    #[test]
    fn insert_rejects_self_and_duplicates() {
        let mut m = Membership::new(NodeId::new(0));
        let neighbor = |id: u64| Neighbor {
            id: NodeId::new(id),
            cached_availability: Availability::saturating(0.5),
            added_at: SimTime::ZERO,
            refreshed_at: SimTime::ZERO,
        };
        assert!(!m.insert(neighbor(0), Sliver::Horizontal)); // self
        assert!(m.insert(neighbor(1), Sliver::Horizontal));
        assert!(!m.insert(neighbor(1), Sliver::Vertical)); // duplicate
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn remove_reports_sliver() {
        let mut m = Membership::new(NodeId::new(0));
        let neighbor = |id: u64| Neighbor {
            id: NodeId::new(id),
            cached_availability: Availability::saturating(0.5),
            added_at: SimTime::ZERO,
            refreshed_at: SimTime::ZERO,
        };
        m.insert(neighbor(1), Sliver::Horizontal);
        m.insert(neighbor(2), Sliver::Vertical);
        assert_eq!(m.remove(NodeId::new(2)).unwrap().1, Sliver::Vertical);
        assert_eq!(m.remove(NodeId::new(1)).unwrap().1, Sliver::Horizontal);
        assert!(m.remove(NodeId::new(1)).is_none());
        assert!(m.is_empty());
    }

    #[test]
    fn neighbors_iterate_hs_before_vs() {
        let mut m = Membership::new(NodeId::new(0));
        let neighbor = |id: u64| Neighbor {
            id: NodeId::new(id),
            cached_availability: Availability::saturating(0.5),
            added_at: SimTime::ZERO,
            refreshed_at: SimTime::ZERO,
        };
        m.insert(neighbor(5), Sliver::Vertical);
        m.insert(neighbor(3), Sliver::Horizontal);
        let order: Vec<u64> = m
            .neighbors(SliverScope::Both)
            .map(|n| n.id.raw())
            .collect();
        assert_eq!(order, vec![3, 5]);
    }

    #[test]
    fn compact_stamps_round_trip() {
        let mut m = Membership::new(NodeId::new(0));
        let added = SimTime::from_millis(86_400_000); // one simulated day
        m.insert(
            Neighbor {
                id: NodeId::new(1),
                cached_availability: Availability::saturating(0.5),
                added_at: added,
                refreshed_at: added,
            },
            Sliver::Horizontal,
        );
        let later = SimTime::from_millis(86_460_000);
        m.touch_refreshed(later);
        let entry = hs_vec(&m)[0];
        assert_eq!(entry.added_at, added);
        assert_eq!(entry.refreshed_at, later);
    }

    #[test]
    fn clear_empties_lists() {
        let mut oracle = TableOracle::default();
        oracle.set(1, 0.52);
        let pred = take_all_predicate();
        let mut m = Membership::new(NodeId::new(0));
        m.discover(me(), [NodeId::new(1)], &oracle, &pred, SimTime::ZERO);
        m.clear();
        assert!(m.is_empty());
    }
}
