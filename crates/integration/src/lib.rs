//! Workspace-spanning integration tests for the AVMEM reproduction.
//!
//! This crate has no library API; the tests live in the repository's
//! top-level `tests/` directory (see `Cargo.toml`'s `[[test]]` entries)
//! and exercise the crates together: trace → monitoring → overlay →
//! operations.
