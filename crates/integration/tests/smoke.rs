//! Cheapest possible end-to-end wiring check: generate a tiny churn
//! trace, build the harness, warm it up briefly, and run one anycast.
//! Catches cross-crate regressions (trace → harness → ops) without the
//! cost of the full integration suites.

use avmem::harness::{AvmemSim, InitiatorBand, SimConfig};
use avmem::ops::{AnycastConfig, AvailabilityTarget};
use avmem_sim::SimDuration;
use avmem_trace::OvernetModel;

#[test]
fn tiny_overlay_end_to_end() {
    let trace = OvernetModel::default().hosts(60).days(1).generate(7);
    assert_eq!(trace.num_nodes(), 60);

    let mut sim = AvmemSim::new(trace, SimConfig::paper_default(7));
    sim.warm_up(SimDuration::from_hours(6));

    let snapshot = sim.snapshot();
    assert!(snapshot.online_count() > 0, "some node must be online");

    let initiator = [InitiatorBand::Low, InitiatorBand::Mid, InitiatorBand::High]
        .into_iter()
        .find_map(|band| sim.random_online_initiator(band))
        .expect("an online initiator exists");
    let outcome = sim.anycast(
        initiator,
        AvailabilityTarget::threshold(0.0),
        AnycastConfig::paper_default(),
    );
    // With a threshold of 0.0 every node is eligible, so the operation
    // must at least make progress even if routing drops the message.
    assert!(outcome.hops > 0 || outcome.delivered_to.is_some());
}
