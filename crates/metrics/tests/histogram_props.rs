//! Property tests for the log-scale histogram: quantile ordering, the
//! 2× bucket bound, and merge invariants.

use avmem_metrics::histogram::{bucket_of, bucket_upper};
use avmem_metrics::{Histogram, HistogramSnapshot};
use proptest::prelude::*;

fn snapshot_of(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::detached();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

/// Exact `q`-quantile of raw values by the same rank rule the histogram
/// uses (rank ⌈q·n⌉, 1-based).
fn exact_quantile(values: &mut [u64], q: f64) -> u64 {
    values.sort_unstable();
    let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
    values[rank - 1]
}

proptest! {
    #[test]
    fn quantiles_are_monotone(values in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let s = snapshot_of(&values);
        let qs = [0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0];
        for w in qs.windows(2) {
            prop_assert!(s.quantile(w[0]) <= s.quantile(w[1]));
        }
    }

    #[test]
    fn quantile_brackets_the_exact_value(
        mut values in proptest::collection::vec(0u64..1_000_000, 1..200),
        q in 0.01f64..1.0,
    ) {
        let s = snapshot_of(&values);
        let approx = s.quantile(q);
        let exact = exact_quantile(&mut values, q);
        // The reported value is the upper bound of the exact value's
        // bucket: never below the exact value, at most one power of two
        // above it.
        prop_assert!(approx >= exact, "approx {approx} < exact {exact}");
        prop_assert_eq!(approx, bucket_upper(bucket_of(exact)));
    }

    #[test]
    fn merge_matches_recording_the_union(
        a in proptest::collection::vec(0u64..1_000_000, 0..100),
        b in proptest::collection::vec(0u64..1_000_000, 0..100),
    ) {
        let mut merged = snapshot_of(&a);
        merged.merge(&snapshot_of(&b));
        let mut union = a.clone();
        union.extend_from_slice(&b);
        prop_assert_eq!(merged, snapshot_of(&union));
    }

    #[test]
    fn merged_quantile_lies_between_component_quantiles(
        a in proptest::collection::vec(0u64..1_000_000, 1..100),
        b in proptest::collection::vec(0u64..1_000_000, 1..100),
        q in 0.01f64..1.0,
    ) {
        let sa = snapshot_of(&a);
        let sb = snapshot_of(&b);
        let mut merged = sa.clone();
        merged.merge(&sb);
        let (lo, hi) = (sa.quantile(q).min(sb.quantile(q)), sa.quantile(q).max(sb.quantile(q)));
        let m = merged.quantile(q);
        prop_assert!(m >= lo && m <= hi, "merged q{q} = {m} outside [{lo}, {hi}]");
    }

    #[test]
    fn count_and_sum_are_exact(values in proptest::collection::vec(0u64..1_000_000, 0..200)) {
        let s = snapshot_of(&values);
        prop_assert_eq!(s.count(), values.len() as u64);
        prop_assert_eq!(s.sum, values.iter().sum::<u64>());
    }
}
