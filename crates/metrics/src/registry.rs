//! The metric registry and its two text exporters.
//!
//! Families are keyed by metric name; series within a family by their
//! canonical (key-sorted) label rendering. `counter`/`gauge`/`histogram`
//! are get-or-create: the first call registers, later calls with the same
//! name and labels return a handle to the same cell, so independent
//! layers (harness, AVMON, the serve loop) can instrument against one
//! shared [`Registry`] without coordinating ownership.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::histogram::{bucket_upper, HistCore, Histogram, BUCKETS};

/// A monotonically increasing (or periodically re-stored) integer metric.
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter not registered anywhere.
    pub fn detached() -> Counter {
        Counter(Arc::new(AtomicU64::new(0)))
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrites the value — used to mirror an externally accumulated
    /// cumulative count (e.g. `FinalizeStats`) into the registry.
    #[inline]
    pub fn store(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A point-in-time `f64` metric (stored as bits in an atomic).
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A gauge not registered anywhere.
    pub fn detached() -> Gauge {
        Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn name(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

#[derive(Debug)]
enum Cell {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<HistCore>),
}

#[derive(Debug)]
struct Family {
    help: String,
    kind: Kind,
    /// Canonical label rendering (`{k="v",…}`, keys sorted; empty for no
    /// labels) → cell.
    series: BTreeMap<String, Cell>,
}

/// The shared metric registry; see the module docs.
#[derive(Debug, Default)]
pub struct Registry {
    families: Mutex<BTreeMap<String, Family>>,
}

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn label_key(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut pairs: Vec<(&str, &str)> = labels.to_vec();
    pairs.sort_unstable();
    let mut out = String::from("{");
    for (i, (k, v)) in pairs.iter().enumerate() {
        assert!(valid_name(k), "invalid label name {k:?}");
        assert!(
            !v.contains(['"', '\\', '\n']),
            "label value {v:?} needs escaping"
        );
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{v}\"");
    }
    out.push('}');
    out
}

/// Splices one more label into a canonical label rendering (used for the
/// `le` bound of exported histogram buckets).
fn with_label(series: &str, key: &str, value: &str) -> String {
    if series.is_empty() {
        format!("{{{key}=\"{value}\"}}")
    } else {
        format!("{},{key}=\"{value}\"}}", &series[..series.len() - 1])
    }
}

/// Formats an `f64` the way both exporters expect: integral values print
/// without a fraction, everything else via the shortest round-trip form.
fn fmt_f64(v: f64) -> String {
    if v.is_finite() && v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Gets or creates a counter. Panics if `name` is already registered
    /// with a different kind, or on a malformed name/label.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.cell(name, help, labels, Kind::Counter) {
            Cell::Counter(a) => Counter(a),
            _ => unreachable!(),
        }
    }

    /// Gets or creates a gauge (same contract as [`Registry::counter`]).
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.cell(name, help, labels, Kind::Gauge) {
            Cell::Gauge(a) => Gauge(a),
            _ => unreachable!(),
        }
    }

    /// Gets or creates a histogram (same contract as [`Registry::counter`]).
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        match self.cell(name, help, labels, Kind::Histogram) {
            Cell::Histogram(core) => Histogram { core },
            _ => unreachable!(),
        }
    }

    fn cell(&self, name: &str, help: &str, labels: &[(&str, &str)], kind: Kind) -> Cell {
        assert!(valid_name(name), "invalid metric name {name:?}");
        let series = label_key(labels);
        let mut families = self.families.lock().expect("registry poisoned");
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind,
            series: BTreeMap::new(),
        });
        assert_eq!(
            family.kind, kind,
            "metric {name} already registered as a {}",
            family.kind.name()
        );
        let cell = family.series.entry(series).or_insert_with(|| match kind {
            Kind::Counter => Cell::Counter(Arc::new(AtomicU64::new(0))),
            Kind::Gauge => Cell::Gauge(Arc::new(AtomicU64::new(0f64.to_bits()))),
            Kind::Histogram => Cell::Histogram(Arc::new(HistCore::new())),
        });
        match cell {
            Cell::Counter(a) => Cell::Counter(Arc::clone(a)),
            Cell::Gauge(a) => Cell::Gauge(Arc::clone(a)),
            Cell::Histogram(h) => Cell::Histogram(Arc::clone(h)),
        }
    }

    /// Renders the Prometheus text exposition format (`# HELP`/`# TYPE`
    /// headers; histograms as cumulative `_bucket{le=…}` series plus
    /// `_sum`/`_count`; only non-empty buckets are emitted, `+Inf`
    /// always).
    pub fn render_prometheus(&self) -> String {
        let families = self.families.lock().expect("registry poisoned");
        let mut out = String::new();
        for (name, family) in families.iter() {
            let _ = writeln!(out, "# HELP {name} {}", family.help);
            let _ = writeln!(out, "# TYPE {name} {}", family.kind.name());
            for (series, cell) in &family.series {
                match cell {
                    Cell::Counter(a) => {
                        let _ = writeln!(out, "{name}{series} {}", a.load(Ordering::Relaxed));
                    }
                    Cell::Gauge(a) => {
                        let v = f64::from_bits(a.load(Ordering::Relaxed));
                        let _ = writeln!(out, "{name}{series} {}", fmt_f64(v));
                    }
                    Cell::Histogram(h) => {
                        let snap = h.snapshot();
                        let mut cum = 0u64;
                        for b in 0..BUCKETS {
                            if snap.buckets[b] == 0 {
                                continue;
                            }
                            cum += snap.buckets[b];
                            let labels =
                                with_label(series, "le", &bucket_upper(b).to_string());
                            let _ = writeln!(out, "{name}_bucket{labels} {cum}");
                        }
                        let labels = with_label(series, "le", "+Inf");
                        let _ = writeln!(out, "{name}_bucket{labels} {cum}");
                        let _ = writeln!(out, "{name}_sum{series} {}", snap.sum);
                        let _ = writeln!(out, "{name}_count{series} {cum}");
                    }
                }
            }
        }
        out
    }

    /// Renders the human snapshot: one line per series, histograms as
    /// `count/mean/p50/p99/p999`.
    pub fn render_text(&self) -> String {
        let families = self.families.lock().expect("registry poisoned");
        let mut out = String::from("# avmem metrics snapshot\n");
        for (name, family) in families.iter() {
            for (series, cell) in &family.series {
                match cell {
                    Cell::Counter(a) => {
                        let _ = writeln!(
                            out,
                            "counter {name}{series} {}",
                            a.load(Ordering::Relaxed)
                        );
                    }
                    Cell::Gauge(a) => {
                        let v = f64::from_bits(a.load(Ordering::Relaxed));
                        let _ = writeln!(out, "gauge {name}{series} {}", fmt_f64(v));
                    }
                    Cell::Histogram(h) => {
                        let s = h.snapshot();
                        let _ = writeln!(
                            out,
                            "histogram {name}{series} count={} mean={} p50={} p99={} p999={}",
                            s.count(),
                            fmt_f64(s.mean()),
                            s.p50(),
                            s.p99(),
                            s.p999()
                        );
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_cells() {
        let r = Registry::new();
        let a = r.counter("ops_total", "ops", &[("kind", "anycast")]);
        let b = r.counter("ops_total", "ops", &[("kind", "anycast")]);
        a.add(3);
        b.inc();
        assert_eq!(a.get(), 4);
        // Label order does not create a new series.
        let c = r.counter("multi", "m", &[("b", "2"), ("a", "1")]);
        let d = r.counter("multi", "m", &[("a", "1"), ("b", "2")]);
        c.inc();
        assert_eq!(d.get(), 1);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter("x_total", "x", &[]);
        let _ = r.gauge("x_total", "x", &[]);
    }

    #[test]
    fn golden_prometheus_rendering() {
        let r = Registry::new();
        r.counter("avmem_ops_total", "Operations ingested.", &[("kind", "anycast")])
            .add(12);
        r.gauge("avmem_lag_ms", "Wall-clock lag.", &[]).set(1.5);
        let h = r.histogram("avmem_op_latency_ms", "Op latency.", &[]);
        h.record_n(3, 2); // bucket 2 (le 3)
        h.record(100); // bucket 7 (le 127)
        let got = r.render_prometheus();
        let want = "\
# HELP avmem_lag_ms Wall-clock lag.
# TYPE avmem_lag_ms gauge
avmem_lag_ms 1.5
# HELP avmem_op_latency_ms Op latency.
# TYPE avmem_op_latency_ms histogram
avmem_op_latency_ms_bucket{le=\"3\"} 2
avmem_op_latency_ms_bucket{le=\"127\"} 3
avmem_op_latency_ms_bucket{le=\"+Inf\"} 3
avmem_op_latency_ms_sum 106
avmem_op_latency_ms_count 3
# HELP avmem_ops_total Operations ingested.
# TYPE avmem_ops_total counter
avmem_ops_total{kind=\"anycast\"} 12
";
        assert_eq!(got, want);
    }

    #[test]
    fn golden_text_rendering() {
        let r = Registry::new();
        r.counter("avmem_cohorts_total", "Cohorts.", &[]).add(42);
        r.gauge("avmem_online", "Online nodes.", &[]).set(800.0);
        let h = r.histogram("avmem_op_latency_ms", "Op latency.", &[("kind", "anycast")]);
        h.record_n(100, 10);
        let got = r.render_text();
        let want = "\
# avmem metrics snapshot
counter avmem_cohorts_total 42
gauge avmem_online 800
histogram avmem_op_latency_ms{kind=\"anycast\"} count=10 mean=100 p50=127 p99=127 p999=127
";
        assert_eq!(got, want);
    }
}
