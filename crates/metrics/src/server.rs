//! A tiny blocking-TCP metrics endpoint (std-only).
//!
//! [`MetricsServer::bind`] spawns one background thread running a
//! nonblocking `accept` loop; each connection gets a minimal HTTP/1.0
//! response rendered from the shared registry:
//!
//! * `GET /metrics` — Prometheus text exposition format;
//! * `GET /` (or `/text`) — the human snapshot;
//! * anything else — 404.
//!
//! There is deliberately no connection pooling, keep-alive, or TLS: the
//! endpoint exists so a scrape loop (or a human with `curl`) can watch a
//! long `scenario serve` run, and one short-lived connection per scrape
//! is exactly the Prometheus model. [`scrape`] is the matching client,
//! used by the CI smoke and the integration tests.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use crate::registry::Registry;

/// Poll interval of the nonblocking accept loop.
const ACCEPT_POLL: Duration = Duration::from_millis(25);
/// Per-connection read/write timeout.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// The background exporter endpoint; shuts down (and joins its thread)
/// on drop.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:9464`; port 0 picks an ephemeral
    /// port — read it back with [`MetricsServer::local_addr`]) and starts
    /// serving `registry`.
    ///
    /// # Errors
    ///
    /// Propagates bind/configuration I/O errors.
    pub fn bind(registry: Arc<Registry>, addr: &str) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = thread::Builder::new()
            .name("avmem-metrics".into())
            .spawn(move || loop {
                if stop_flag.load(Ordering::Relaxed) {
                    break;
                }
                match listener.accept() {
                    Ok((stream, _)) => serve_conn(stream, &registry),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        thread::sleep(ACCEPT_POLL);
                    }
                    Err(_) => thread::sleep(ACCEPT_POLL),
                }
            })?;
        Ok(MetricsServer {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the thread; idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve_conn(mut stream: TcpStream, registry: &Registry) {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    // Read the request head (we only care about the request line).
    let mut buf = [0u8; 4096];
    let mut len = 0usize;
    while len < buf.len() {
        match stream.read(&mut buf[len..]) {
            Ok(0) => break,
            Ok(n) => {
                len += n;
                if buf[..len].windows(4).any(|w| w == b"\r\n\r\n") {
                    break;
                }
            }
            Err(_) => return,
        }
    }
    let head = String::from_utf8_lossy(&buf[..len]);
    let path = head
        .lines()
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .unwrap_or("/");
    let (status, body) = match path {
        "/metrics" => ("200 OK", registry.render_prometheus()),
        "/" | "/text" => ("200 OK", registry.render_text()),
        _ => ("404 Not Found", String::from("not found\n")),
    };
    let response = format!(
        "HTTP/1.0 {status}\r\nContent-Type: text/plain; charset=utf-8\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(response.as_bytes());
}

/// Fetches `path` from a [`MetricsServer`] and returns the response body
/// (the client half of the endpoint, used by tests and the CI smoke).
///
/// # Errors
///
/// Propagates connect/read errors; a non-200 status is surfaced as
/// [`std::io::ErrorKind::InvalidData`].
pub fn scrape<A: ToSocketAddrs>(addr: A, path: &str) -> std::io::Result<String> {
    let addr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidInput, "no address"))?;
    let mut stream = TcpStream::connect_timeout(&addr, IO_TIMEOUT)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let request = format!("GET {path} HTTP/1.0\r\nHost: avmem\r\n\r\n");
    stream.write_all(request.as_bytes())?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let (head, body) = response.split_once("\r\n\r\n").ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed response")
    })?;
    if !head.starts_with("HTTP/1.0 200") && !head.starts_with("HTTP/1.1 200") {
        let status = head.lines().next().unwrap_or("").to_string();
        return Err(std::io::Error::new(std::io::ErrorKind::InvalidData, status));
    }
    Ok(body.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_both_exporters_and_404() {
        let registry = Arc::new(Registry::new());
        registry.counter("avmem_test_total", "Test.", &[]).add(7);
        let server = MetricsServer::bind(Arc::clone(&registry), "127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        let prom = scrape(addr, "/metrics").unwrap();
        assert!(prom.contains("# TYPE avmem_test_total counter"));
        assert!(prom.contains("avmem_test_total 7"));
        let text = scrape(addr, "/").unwrap();
        assert!(text.starts_with("# avmem metrics snapshot"));
        assert!(scrape(addr, "/nope").is_err());
    }

    #[test]
    fn shutdown_is_idempotent() {
        let registry = Arc::new(Registry::new());
        let mut server = MetricsServer::bind(registry, "127.0.0.1:0").unwrap();
        server.shutdown();
        server.shutdown();
    }
}
