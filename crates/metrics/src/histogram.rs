//! Fixed-bucket log₂-scale histograms.
//!
//! A histogram is 64 atomic buckets; value `v` lands in bucket
//! `64 - v.leading_zeros()` (bucket 0 holds exactly zero), so bucket `b`
//! covers `[2^(b-1), 2^b - 1]` — ≤2× relative error on any quantile,
//! constant memory, and recording is two relaxed `fetch_add`s. That is
//! deliberately coarse: the registry serves *live* p50/p99/p999 over
//! unbounded streams, where a factor-of-two bound per bucket beats an
//! unbounded reservoir.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of log₂ buckets per histogram.
pub const BUCKETS: usize = 64;

/// Bucket index for a recorded value.
#[inline]
pub fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (64 - value.leading_zeros() as usize).min(BUCKETS - 1)
    }
}

/// Inclusive upper bound of a bucket (the value quantiles report).
#[inline]
pub fn bucket_upper(bucket: usize) -> u64 {
    match bucket {
        0 => 0,
        b if b >= BUCKETS - 1 => u64::MAX,
        b => (1u64 << b) - 1,
    }
}

#[derive(Debug)]
pub(crate) struct HistCore {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
}

impl HistCore {
    pub(crate) fn new() -> HistCore {
        HistCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }

    pub(crate) fn record_n(&self, value: u64, n: u64) {
        self.buckets[bucket_of(value)].fetch_add(n, Ordering::Relaxed);
        self.sum.fetch_add(value.saturating_mul(n), Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|b| self.buckets[b].load(Ordering::Relaxed)),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// A cloneable recording handle; clones share the same buckets.
#[derive(Clone, Debug)]
pub struct Histogram {
    pub(crate) core: Arc<HistCore>,
}

impl Histogram {
    /// A histogram not registered anywhere (unit tests, ad-hoc use).
    pub fn detached() -> Histogram {
        Histogram {
            core: Arc::new(HistCore::new()),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        self.core.record_n(value, 1);
    }

    /// Records `n` identical observations in one update.
    #[inline]
    pub fn record_n(&self, value: u64, n: u64) {
        self.core.record_n(value, n);
    }

    /// A consistent-enough copy of the current buckets.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.core.snapshot()
    }
}

/// A point-in-time copy of a histogram, with quantile extraction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts.
    pub buckets: [u64; BUCKETS],
    /// Sum of recorded values (saturating).
    pub sum: u64,
}

impl HistogramSnapshot {
    /// The all-zero snapshot.
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
            sum: 0,
        }
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Mean recorded value (0 when empty).
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum as f64 / count as f64
        }
    }

    /// The `q`-quantile (`q` clamped to `[0, 1]`), reported as the upper
    /// bound of the bucket holding the rank-`⌈q·count⌉` observation — an
    /// overestimate by at most 2×. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(b);
            }
        }
        bucket_upper(BUCKETS - 1)
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Adds `other`'s observations into `self` (shard-merge).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (b, &n) in other.buckets.iter().enumerate() {
            self.buckets[b] += n;
        }
        self.sum = self.sum.saturating_add(other.sum);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_the_u64_range() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        for v in [0u64, 1, 2, 3, 1000, 1 << 40, u64::MAX] {
            let b = bucket_of(v);
            assert!(bucket_upper(b) >= v, "upper({b}) < {v}");
        }
    }

    #[test]
    fn quantiles_of_a_point_mass() {
        let h = Histogram::detached();
        h.record_n(100, 1000);
        let s = h.snapshot();
        assert_eq!(s.count(), 1000);
        let p50 = s.p50();
        assert!((100..200).contains(&p50), "p50 = {p50}");
        assert_eq!(s.p50(), s.p999());
        assert_eq!(s.mean(), 100.0);
    }

    #[test]
    fn quantiles_are_monotone_and_bound_the_max() {
        let h = Histogram::detached();
        for v in [1u64, 5, 9, 120, 4000, 4001, 70_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert!(s.quantile(0.0) <= s.p50());
        assert!(s.p50() <= s.p99());
        assert!(s.p99() <= s.p999());
        assert!(s.quantile(1.0) >= 70_000);
    }

    #[test]
    fn merge_adds_counts_and_sums() {
        let a = Histogram::detached();
        let b = Histogram::detached();
        a.record_n(10, 5);
        b.record_n(1000, 7);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count(), 12);
        assert_eq!(m.sum, 5 * 10 + 7 * 1000);
    }
}
