//! Phase-span tracing.
//!
//! The maintenance harness used to time its phases with ad-hoc
//! `Instant::now()` pairs accumulated into `PhaseTimings` fields. A
//! [`Tracer`] replaces that: a [`Span`] is opened per phase execution and
//! records, on drop, into a `(phase, lane)` cell — lane 0 is the
//! coordinator (whose totals *are* the old `PhaseTimings` wall-clock),
//! lanes `1..` accumulate shard-worker busy time (see [`shard_lane`]).
//! When a registry is attached, every span additionally lands in a
//! per-phase span-duration histogram, so `scenario serve` exposes live
//! phase percentiles without the harness knowing about exporters.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use crate::histogram::Histogram;
use crate::registry::Registry;

/// Accumulation lanes per phase: lane 0 is the coordinator, lanes
/// `1..LANES` fold shard workers (shard `s` → lane `1 + s % (LANES-1)`).
pub const LANES: usize = 17;

/// The lane a shard worker records into.
#[inline]
pub fn shard_lane(shard: usize) -> usize {
    1 + shard % (LANES - 1)
}

/// Process-wide allocation-count probe sampled around spans.
static ALLOC_PROBE: OnceLock<fn() -> u64> = OnceLock::new();

/// Installs the allocation-count probe spans sample on open and close.
///
/// The probe returns a monotone cumulative allocation-call count (e.g.
/// `avmem_util::heap::alloc_calls`); each span attributes the delta
/// observed across its lifetime to its `(phase, lane)` cell. Idempotent:
/// the first installed probe wins. With concurrent lanes the attribution
/// is approximate (deltas overlap); on the serial path it is exact.
pub fn set_alloc_probe(probe: fn() -> u64) {
    let _ = ALLOC_PROBE.set(probe);
}

#[inline]
fn probe_allocs() -> u64 {
    ALLOC_PROBE.get().map_or(0, |probe| probe())
}

/// Per-phase, per-lane busy-time accumulator; see the module docs.
#[derive(Debug)]
pub struct Tracer {
    phases: &'static [&'static str],
    /// `phases.len() * LANES` cells, phase-major.
    nanos: Vec<AtomicU64>,
    spans: Vec<AtomicU64>,
    /// Allocation calls attributed per cell via the installed probe.
    allocs: Vec<AtomicU64>,
    cohorts: AtomicU64,
    /// Per-phase span-duration histograms (µs), present once attached.
    hists: OnceLock<Vec<Histogram>>,
}

impl Tracer {
    /// A tracer over a fixed phase list.
    pub fn new(phases: &'static [&'static str]) -> Tracer {
        let cells = phases.len() * LANES;
        Tracer {
            phases,
            nanos: (0..cells).map(|_| AtomicU64::new(0)).collect(),
            spans: (0..cells).map(|_| AtomicU64::new(0)).collect(),
            allocs: (0..cells).map(|_| AtomicU64::new(0)).collect(),
            cohorts: AtomicU64::new(0),
            hists: OnceLock::new(),
        }
    }

    /// The phase names this tracer accumulates.
    pub fn phases(&self) -> &'static [&'static str] {
        self.phases
    }

    /// Opens a span; elapsed time is recorded when the guard drops.
    #[inline]
    pub fn span(&self, phase: usize, lane: usize) -> Span<'_> {
        debug_assert!(phase < self.phases.len() && lane < LANES);
        Span {
            tracer: self,
            phase,
            idx: phase * LANES + lane,
            start: Instant::now(),
            start_allocs: probe_allocs(),
        }
    }

    /// Records an already-measured span directly. For call sites where a
    /// guard's borrow of the tracer would conflict with a `&mut self`
    /// method on the owning type — semantically identical to letting a
    /// [`Span`] of the same elapsed time drop.
    pub fn record(&self, phase: usize, lane: usize, elapsed: Duration) {
        debug_assert!(phase < self.phases.len() && lane < LANES);
        let idx = phase * LANES + lane;
        let nanos = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        self.nanos[idx].fetch_add(nanos, Ordering::Relaxed);
        self.spans[idx].fetch_add(1, Ordering::Relaxed);
        if let Some(hists) = self.hists.get() {
            hists[phase].record(elapsed.as_micros() as u64);
        }
    }

    /// Busy time accumulated in one `(phase, lane)` cell.
    pub fn lane_total(&self, phase: usize, lane: usize) -> Duration {
        Duration::from_nanos(self.nanos[phase * LANES + lane].load(Ordering::Relaxed))
    }

    /// Busy time across all lanes of a phase.
    pub fn total(&self, phase: usize) -> Duration {
        let base = phase * LANES;
        Duration::from_nanos(
            (0..LANES)
                .map(|l| self.nanos[base + l].load(Ordering::Relaxed))
                .sum(),
        )
    }

    /// Spans recorded for a phase across all lanes.
    pub fn span_count(&self, phase: usize) -> u64 {
        let base = phase * LANES;
        (0..LANES)
            .map(|l| self.spans[base + l].load(Ordering::Relaxed))
            .sum()
    }

    /// Allocation calls attributed to a phase across all lanes (zero
    /// until a probe is installed via [`set_alloc_probe`]).
    pub fn phase_allocs(&self, phase: usize) -> u64 {
        let base = phase * LANES;
        (0..LANES)
            .map(|l| self.allocs[base + l].load(Ordering::Relaxed))
            .sum()
    }

    /// Counts one maintenance cohort.
    #[inline]
    pub fn tick_cohort(&self) {
        self.cohorts.fetch_add(1, Ordering::Relaxed);
    }

    /// Cohorts counted so far.
    pub fn cohorts(&self) -> u64 {
        self.cohorts.load(Ordering::Relaxed)
    }

    /// Attaches per-phase span-duration histograms
    /// (`{prefix}_phase_span_us{phase=…}`) to `registry`. Idempotent per
    /// tracer; later calls are ignored.
    pub fn attach(&self, registry: &Registry, prefix: &str) {
        let _ = self.hists.get_or_init(|| {
            self.phases
                .iter()
                .map(|phase| {
                    registry.histogram(
                        &format!("{prefix}_phase_span_us"),
                        "Span duration per maintenance phase (µs).",
                        &[("phase", phase)],
                    )
                })
                .collect()
        });
    }

    /// Publishes cumulative busy-time counters
    /// (`{prefix}_phase_busy_ns{phase=…,lane=…}`) and the cohort count
    /// into `registry`. Cheap enough to call on every heartbeat.
    pub fn publish(&self, registry: &Registry, prefix: &str) {
        let busy_name = format!("{prefix}_phase_busy_ns");
        for (p, phase) in self.phases.iter().enumerate() {
            for lane in 0..LANES {
                let cell = self.nanos[p * LANES + lane].load(Ordering::Relaxed);
                if cell == 0 {
                    continue;
                }
                let lane_label = if lane == 0 {
                    "coord".to_string()
                } else {
                    format!("s{}", lane - 1)
                };
                registry
                    .counter(
                        &busy_name,
                        "Cumulative busy time per maintenance phase and lane (ns).",
                        &[("phase", phase), ("lane", &lane_label)],
                    )
                    .store(cell);
            }
        }
        let allocs_name = format!("{prefix}_phase_allocs_total");
        for (p, phase) in self.phases.iter().enumerate() {
            let total = self.phase_allocs(p);
            if total == 0 {
                continue;
            }
            registry
                .counter(
                    &allocs_name,
                    "Allocation calls attributed per maintenance phase.",
                    &[("phase", phase)],
                )
                .store(total);
        }
        registry
            .counter(
                &format!("{prefix}_cohorts_total"),
                "Maintenance cohorts executed.",
                &[],
            )
            .store(self.cohorts());
    }
}

impl Clone for Tracer {
    /// Clones current totals into an independent tracer (registry
    /// attachment is not carried over).
    fn clone(&self) -> Tracer {
        Tracer {
            phases: self.phases,
            nanos: self
                .nanos
                .iter()
                .map(|a| AtomicU64::new(a.load(Ordering::Relaxed)))
                .collect(),
            spans: self
                .spans
                .iter()
                .map(|a| AtomicU64::new(a.load(Ordering::Relaxed)))
                .collect(),
            allocs: self
                .allocs
                .iter()
                .map(|a| AtomicU64::new(a.load(Ordering::Relaxed)))
                .collect(),
            cohorts: AtomicU64::new(self.cohorts()),
            hists: OnceLock::new(),
        }
    }
}

/// Guard returned by [`Tracer::span`]; records elapsed time on drop.
#[must_use = "a span records on drop; binding it to _ measures nothing"]
#[derive(Debug)]
pub struct Span<'a> {
    tracer: &'a Tracer,
    phase: usize,
    idx: usize,
    start: Instant,
    start_allocs: u64,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed();
        let nanos = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        self.tracer.nanos[self.idx].fetch_add(nanos, Ordering::Relaxed);
        self.tracer.spans[self.idx].fetch_add(1, Ordering::Relaxed);
        let allocs = probe_allocs().saturating_sub(self.start_allocs);
        if allocs > 0 {
            self.tracer.allocs[self.idx].fetch_add(allocs, Ordering::Relaxed);
        }
        if let Some(hists) = self.tracer.hists.get() {
            hists[self.phase].record(elapsed.as_micros() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_accumulate_into_their_lane() {
        let tracer = Tracer::new(&["oracle", "finalize"]);
        {
            let _span = tracer.span(1, 0);
            std::thread::sleep(Duration::from_millis(2));
        }
        {
            let _span = tracer.span(1, shard_lane(3));
        }
        assert!(tracer.lane_total(1, 0) >= Duration::from_millis(2));
        assert_eq!(tracer.span_count(1), 2);
        assert_eq!(tracer.span_count(0), 0);
        assert!(tracer.total(1) >= tracer.lane_total(1, 0));
    }

    #[test]
    fn alloc_probe_attributes_deltas_to_spans() {
        static TICKS: AtomicU64 = AtomicU64::new(0);
        fn fake_probe() -> u64 {
            // Advances on every read, so each span observes a delta of 1.
            TICKS.fetch_add(1, Ordering::Relaxed)
        }
        set_alloc_probe(fake_probe);
        let tracer = Tracer::new(&["oracle", "finalize"]);
        drop(tracer.span(0, 0));
        drop(tracer.span(0, shard_lane(2)));
        // Other tests in this process share the probe, so the delta is a
        // lower bound (each of our two spans observes at least one tick).
        assert!(tracer.phase_allocs(0) >= 2);
        assert_eq!(tracer.phase_allocs(1), 0);
        let registry = Registry::new();
        tracer.publish(&registry, "avmem");
        assert!(registry
            .render_prometheus()
            .contains("avmem_phase_allocs_total{phase=\"oracle\"}"));
    }

    #[test]
    fn attach_feeds_phase_histograms() {
        let registry = Registry::new();
        let tracer = Tracer::new(&["oracle"]);
        tracer.attach(&registry, "avmem");
        drop(tracer.span(0, 0));
        tracer.publish(&registry, "avmem");
        let text = registry.render_prometheus();
        assert!(text.contains("avmem_phase_span_us_count{phase=\"oracle\"} 1"));
        assert!(text.contains("avmem_phase_busy_ns{lane=\"coord\",phase=\"oracle\"}"));
    }
}
