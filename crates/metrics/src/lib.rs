#![warn(missing_docs)]

//! Observability surface for the AVMEM reproduction.
//!
//! Every long-running mode of the workspace — `scenario run`, `scenario
//! serve`, and the benches — reports through the one [`Registry`] defined
//! here. The design goals, in order:
//!
//! 1. **Lock-cheap hot path.** Instrument handles ([`Counter`], [`Gauge`],
//!    [`Histogram`]) are `Arc`s over atomics; recording is a relaxed
//!    `fetch_add`/`store` with no registry lock. The registry mutex is
//!    taken only at registration and render time.
//! 2. **Bounded memory.** Histograms are fixed arrays of
//!    [`histogram::BUCKETS`] log₂ buckets — percentile extraction
//!    (p50/p99/p999) costs one pass over 64 words, and a day of sustained
//!    traffic costs the same bytes as a minute.
//! 3. **No dependencies.** Everything (including the TCP endpoint in
//!    [`server`]) is `std`-only, so the crate stays a leaf every other
//!    crate can afford to depend on.
//!
//! Two exporters render the same registry: [`Registry::render_text`] (a
//! human snapshot) and [`Registry::render_prometheus`] (the Prometheus
//! text exposition format, served by [`MetricsServer`] at `/metrics`).
//!
//! [`Tracer`] is the phase-span layer: the maintenance harness opens a
//! [`Span`] per phase execution (keyed by `(phase, lane)`, where lane 0 is
//! the coordinator and the other lanes are shard workers) instead of
//! keeping ad-hoc `Instant` arithmetic, and the same spans feed both the
//! harness's `PhaseTimings` and, when a registry is attached, live
//! span-duration histograms.

pub mod histogram;
pub mod registry;
pub mod server;
pub mod trace;

pub use histogram::{Histogram, HistogramSnapshot};
pub use registry::{Counter, Gauge, Registry};
pub use server::{scrape, MetricsServer};
pub use trace::{set_alloc_probe, shard_lane, Span, Tracer, LANES};
