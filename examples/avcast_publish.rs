//! Availability-dependent publish-subscribe (the AVCast use case),
//! expressed as a declarative scenario.
//!
//! §1 of the paper motivates threshold-multicast with "a
//! publish-subscribe or multicast application where packets are sent out
//! to only nodes above a certain availability … Such a multicast
//! application would incentivize hosts to have higher availability, in
//! order to obtain good reliability."
//!
//! This example describes the publisher's day in the `avmem_scenario`
//! text format — a pure multicast workload above an availability
//! threshold — then runs it twice, comparing flooding and gossip
//! dissemination on reliability and message cost, and shows the
//! incentive effect straight off the report's per-decile delivery
//! series: deliveries per subscriber grow with the subscriber's
//! availability.
//!
//! Run with:
//!
//! ```text
//! cargo run -p avmem_integration --release --example avcast_publish
//! ```

use avmem_scenario::{parse_spec, MulticastSpec, ScenarioRunner};

const PUBLISH_SCENARIO: &str = r#"
name = "avcast-publish"
seed = 9
warmup_mins = 1440
duration_mins = 360
health_every_mins = 120

[churn]
model = "overnet"
hosts = 400
days = 2

[maintenance]
mode = "converged"
rebuild_every_mins = 60
engine = "parallel"

[workload]
ops_per_hour = 10.0
anycast_fraction = 0.0   # pure publish: every operation is a multicast
policy = "retried-greedy"
retries = 8
scope = "both"
ttl = 6
initiators = "high"
multicast = "flood"

[[target]]
weight = 1.0
kind = "threshold"
min = 0.6
"#;

fn main() {
    let base = parse_spec(PUBLISH_SCENARIO).expect("example scenario parses");

    // Subscriber population per availability decile, for the
    // packets-per-subscriber incentive curve.
    let trace = base.build_trace().expect("trace builds");
    let mut subscribers = [0usize; 10];
    for i in 0..trace.num_nodes() {
        let av = trace.long_term_availability(i).value();
        if av > 0.6 {
            subscribers[((av * 10.0) as usize).min(9)] += 1;
        }
    }

    for (label, strategy) in [
        ("flooding", MulticastSpec::Flood),
        (
            "gossip",
            MulticastSpec::Gossip {
                fanout: 5,
                rounds: 2,
                period_secs: 1,
            },
        ),
    ] {
        let mut spec = base.clone();
        spec.workload.multicast = strategy;
        let report = ScenarioRunner::new(spec)
            .expect("spec validates")
            .run()
            .expect("scenario runs");

        let m = &report.multicast;
        println!(
            "{label}: published {} packets to subscribers with av > 0.6",
            m.sent
        );
        println!(
            "  mean reliability {:.1}%, spam {:.1}%, {} total messages",
            100.0 * m.mean_reliability(),
            100.0 * m.mean_spam(),
            m.total_messages
        );

        // The incentive effect: packets per subscriber by availability
        // decile (only deciles above the 0.6 threshold are populated).
        println!("  deliveries per subscriber by availability band:");
        for (d, &nodes) in subscribers.iter().enumerate() {
            if nodes == 0 || m.deliveries_by_decile[d] == 0 {
                continue;
            }
            println!(
                "    av ∈ [{:.1}, {:.1}): {:.1} packets/node ({} nodes)",
                d as f64 / 10.0,
                (d + 1) as f64 / 10.0,
                m.deliveries_by_decile[d] as f64 / nodes as f64,
                nodes
            );
        }
    }
}
