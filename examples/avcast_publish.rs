//! Availability-dependent publish-subscribe (the AVCast use case).
//!
//! §1 of the paper motivates threshold-multicast with "a
//! publish-subscribe or multicast application where packets are sent out
//! to only nodes above a certain availability … Such a multicast
//! application would incentivize hosts to have higher availability, in
//! order to obtain good reliability."
//!
//! This example publishes a stream of packets to subscribers above an
//! availability threshold, comparing the flooding and gossip
//! dissemination strategies on reliability, latency and message cost —
//! and then shows the incentive effect: per-node delivery rate grows with
//! the node's availability.
//!
//! Run with:
//!
//! ```text
//! cargo run -p avmem_integration --release --example avcast_publish
//! ```

use std::collections::HashMap;

use avmem::harness::{AvmemSim, InitiatorBand, SimConfig};
use avmem::ops::{AvailabilityTarget, MulticastConfig, MulticastStrategy};
use avmem_sim::SimDuration;
use avmem_trace::OvernetModel;
use avmem_util::NodeId;

fn main() {
    let trace = OvernetModel::default().hosts(400).days(2).generate(5);
    let mut sim = AvmemSim::new(trace, SimConfig::paper_default(9));
    sim.warm_up(SimDuration::from_hours(24));

    let target = AvailabilityTarget::threshold(0.6);
    let packets = 30;

    for (label, strategy) in [
        ("flooding", MulticastStrategy::Flood),
        ("gossip", MulticastStrategy::paper_gossip()),
    ] {
        let config = MulticastConfig {
            strategy,
            ..MulticastConfig::paper_default()
        };
        let mut reliability_sum = 0.0;
        let mut reliability_count = 0usize;
        let mut messages = 0u64;
        let mut worst_ms = 0u64;
        let mut per_node_deliveries: HashMap<NodeId, usize> = HashMap::new();

        for _ in 0..packets {
            let Some(publisher) = sim.random_online_initiator(InitiatorBand::High) else {
                continue;
            };
            let outcome = sim.multicast(publisher, target, config);
            messages += u64::from(outcome.messages) + u64::from(outcome.anycast.messages);
            if let Some(worst) = outcome.worst_latency() {
                worst_ms = worst_ms.max(worst.as_millis());
            }
            for &node in outcome.deliveries.keys() {
                *per_node_deliveries.entry(node).or_insert(0) += 1;
            }
            let world = sim.world();
            if let Some(r) = outcome.reliability(&world, target) {
                reliability_sum += r;
                reliability_count += 1;
            }
        }

        println!("{label}: published {packets} packets to subscribers with av > 0.6");
        println!(
            "  mean reliability {:.1}%, worst latency {} ms, {} total messages",
            100.0 * reliability_sum / reliability_count.max(1) as f64,
            worst_ms,
            messages
        );

        // The incentive effect: bucket delivery counts by subscriber
        // availability.
        let mut bucket_sum = [0usize; 4];
        let mut bucket_n = [0usize; 4];
        for (&node, &count) in &per_node_deliveries {
            let av = sim.trace().long_term_availability(node.raw() as usize).value();
            let b = (((av - 0.6) / 0.1).floor() as usize).min(3);
            bucket_sum[b] += count;
            bucket_n[b] += 1;
        }
        println!("  deliveries per subscriber by availability band:");
        for b in 0..4 {
            if bucket_n[b] == 0 {
                continue;
            }
            println!(
                "    av ∈ [{:.1}, {:.1}): {:.1} packets/node ({} nodes)",
                0.6 + 0.1 * b as f64,
                0.6 + 0.1 * (b + 1) as f64,
                bucket_sum[b] as f64 / bucket_n[b] as f64,
                bucket_n[b]
            );
        }
    }
}
