//! Fingerprinting an availability range with range-multicast.
//!
//! §1 of the paper: range operations "can be used to fingerprint
//! characteristics of the nodes within an availability range, e.g., one
//! could find out the average bandwidth of nodes below a certain
//! availability, in order to correlate the two facts."
//!
//! This example assigns every host a synthetic bandwidth (correlated
//! with availability plus noise — home DSL nodes churn more, university
//! hosts stay up), then surveys three availability ranges with
//! range-multicast and aggregates the reported bandwidths of the
//! responders. The survey recovers the underlying correlation without
//! contacting nodes outside the ranges.
//!
//! Run with:
//!
//! ```text
//! cargo run -p avmem_integration --release --example fingerprint_survey
//! ```

use avmem::harness::{AvmemSim, InitiatorBand, SimConfig};
use avmem::ops::{AvailabilityTarget, MulticastConfig};
use avmem_sim::SimDuration;
use avmem_trace::OvernetModel;
use avmem_util::{Rng, SplitMix64};

/// Synthetic per-host bandwidth in Mbps: base jitter plus an
/// availability-correlated component.
fn bandwidth_mbps(availability: f64, rng: &mut SplitMix64) -> f64 {
    2.0 + 40.0 * availability + rng.range_f64(0.0, 10.0)
}

fn main() {
    let trace = OvernetModel::default().hosts(500).days(2).generate(23);
    let mut bw_rng = SplitMix64::new(99);
    let bandwidths: Vec<f64> = (0..trace.num_nodes())
        .map(|i| bandwidth_mbps(trace.long_term_availability(i).value(), &mut bw_rng))
        .collect();

    let mut sim = AvmemSim::new(trace, SimConfig::paper_default(13));
    sim.warm_up(SimDuration::from_hours(24));

    println!("bandwidth survey via range-multicast (500 hosts):");
    println!("  range          responders  mean bandwidth (survey)  mean bandwidth (census)");

    for (lo, hi) in [(0.1, 0.3), (0.4, 0.6), (0.8, 1.0)] {
        let target = AvailabilityTarget::range(lo, hi);
        let Some(initiator) = sim.random_online_initiator(InitiatorBand::Mid) else {
            continue;
        };
        let outcome = sim.multicast(initiator, target, MulticastConfig::paper_default());

        // Responders: every node that received the survey and truly sits
        // in the range reports its bandwidth.
        let world = sim.world();
        let responders: Vec<_> = outcome.delivered_in_range(&world, target).collect();
        let survey_mean = if responders.is_empty() {
            f64::NAN
        } else {
            responders
                .iter()
                .map(|id| bandwidths[id.raw() as usize])
                .sum::<f64>()
                / responders.len() as f64
        };

        // Ground-truth census over the whole population, for comparison.
        let census: Vec<f64> = (0..sim.trace().num_nodes())
            .filter(|&i| {
                let av = sim.trace().long_term_availability(i);
                target.contains(av)
            })
            .map(|i| bandwidths[i])
            .collect();
        let census_mean = census.iter().sum::<f64>() / census.len().max(1) as f64;

        println!(
            "  [{lo:.1}, {hi:.1}]     {:>6}       {survey_mean:>10.1} Mbps          {census_mean:>10.1} Mbps",
            responders.len()
        );
    }

    println!();
    println!(
        "the survey's per-range means track the census: higher-availability \
         ranges report higher bandwidth, recovered without any global broadcast"
    );
}
