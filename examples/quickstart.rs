//! Quickstart: build an AVMEM overlay over synthetic Overnet churn and
//! run one of each management operation.
//!
//! Run with:
//!
//! ```text
//! cargo run -p avmem_integration --release --example quickstart
//! ```

use avmem::harness::{AvmemSim, InitiatorBand, SimConfig};
use avmem::ops::{AnycastConfig, AvailabilityTarget, MulticastConfig};
use avmem::SliverScope;
use avmem_sim::SimDuration;
use avmem_trace::OvernetModel;

fn main() {
    // 1. Workload: an Overnet-like churn trace, 400 hosts, 20-minute
    //    probe slots — the paper's §4 setup at reduced scale.
    let trace = OvernetModel::default().hosts(400).days(2).generate(42);
    let stats = trace.stats();
    println!(
        "trace: {} hosts, {} slots, mean availability {:.2}, mean online {:.0}",
        stats.num_nodes, stats.num_slots, stats.mean_availability, stats.mean_online
    );

    // 2. Build the overlay with the paper's default predicates
    //    (Logarithmic Vertical Sliver + Logarithmic-Constant Horizontal
    //    Sliver, ε = 0.1) and warm up for 24 hours.
    let mut sim = AvmemSim::new(trace, SimConfig::paper_default(7));
    sim.warm_up(SimDuration::from_hours(24));

    let snapshot = sim.snapshot();
    println!(
        "overlay: {} nodes online, mean degree {:.1}, largest component {:.0}%",
        snapshot.online_count(),
        snapshot.mean_degree(),
        100.0 * snapshot.largest_component_fraction(SliverScope::Both)
    );

    // 3. Range-anycast: find some node with availability in [0.85, 0.95],
    //    starting from a mid-availability initiator.
    let target = AvailabilityTarget::range(0.85, 0.95);
    let initiator = sim
        .random_online_initiator(InitiatorBand::Mid)
        .expect("a mid-availability node is online");
    let anycast = sim.anycast(initiator, target, AnycastConfig::paper_default());
    match anycast.delivered_to {
        Some(node) => println!(
            "anycast {target}: delivered to {node} in {} hops, {} ms",
            anycast.hops,
            anycast.latency.as_millis()
        ),
        None => println!("anycast {target}: dropped ({:?})", anycast.drop_reason),
    }

    // 4. Threshold-multicast: flood every node with availability > 0.7.
    let target = AvailabilityTarget::threshold(0.7);
    let initiator = sim
        .random_online_initiator(InitiatorBand::High)
        .expect("a high-availability node is online");
    let multicast = sim.multicast(initiator, target, MulticastConfig::paper_default());
    let world = sim.world();
    println!(
        "multicast {target}: {} eligible, reliability {:.0}%, spam {:.1}%, worst latency {} ms, {} messages",
        multicast.eligible,
        100.0 * multicast.reliability(&world, target).unwrap_or(0.0),
        100.0 * multicast.spam_ratio(&world, target).unwrap_or(0.0),
        multicast.worst_latency().map(|d| d.as_millis()).unwrap_or(0),
        multicast.messages
    );
}
