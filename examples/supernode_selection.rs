//! Supernode selection via threshold-anycast.
//!
//! §1 of the paper motivates threshold-anycast with "selecting a
//! supernode in a p2p system with a minimal threshold availability"
//! (akin to FastTrack supernodes). This example runs repeated
//! threshold-anycasts (availability > 0.9) from random low- and
//! mid-availability initiators, collects the selected supernodes, and
//! shows the selection is (a) reliable, (b) actually lands on
//! high-availability nodes, and (c) spreads load across several distinct
//! supernodes rather than hammering one.
//!
//! Run with:
//!
//! ```text
//! cargo run -p avmem_integration --release --example supernode_selection
//! ```

use std::collections::BTreeMap;

use avmem::harness::{AvmemSim, InitiatorBand, SimConfig};
use avmem::ops::{AnycastConfig, AvailabilityTarget, ForwardPolicy};
use avmem::SliverScope;
use avmem_sim::SimDuration;
use avmem_trace::OvernetModel;
use avmem_util::NodeId;

fn main() {
    let trace = OvernetModel::default().hosts(500).days(2).generate(11);
    let mut sim = AvmemSim::new(trace, SimConfig::paper_default(3));
    sim.warm_up(SimDuration::from_hours(24));

    let threshold = 0.9;
    let target = AvailabilityTarget::threshold(threshold);
    let config = AnycastConfig {
        policy: ForwardPolicy::RetriedGreedy { retries: 8 },
        scope: SliverScope::Both,
        ttl: 6,
    };

    let mut selections: BTreeMap<NodeId, usize> = BTreeMap::new();
    let mut attempts = 0;
    let mut delivered = 0;
    let mut total_hops = 0u32;

    for round in 0..100 {
        let band = if round % 2 == 0 {
            InitiatorBand::Low
        } else {
            InitiatorBand::Mid
        };
        let Some(initiator) = sim.random_online_initiator(band) else {
            continue;
        };
        attempts += 1;
        let outcome = sim.anycast(initiator, target, config);
        if let Some(supernode) = outcome.delivered_to {
            delivered += 1;
            total_hops += outcome.hops;
            *selections.entry(supernode).or_insert(0) += 1;
        }
    }

    println!("supernode selection: availability > {threshold}");
    println!(
        "  {delivered}/{attempts} selections succeeded, mean hops {:.2}",
        total_hops as f64 / delivered.max(1) as f64
    );
    println!("  {} distinct supernodes selected", selections.len());

    let mut spread: Vec<(usize, NodeId)> = selections
        .iter()
        .map(|(&node, &count)| (count, node))
        .collect();
    spread.sort_unstable_by(|a, b| b.cmp(a));
    println!("  top selections (count, node, true availability):");
    for (count, node) in spread.iter().take(5) {
        let av = sim.trace().long_term_availability(node.raw() as usize);
        println!("    {count:>3}  {node}  av={av}");
    }
}
